#include "server/protocol.h"

#include <array>
#include <cmath>
#include <cstring>
#include <string>

#include "util/logging.h"
#include "util/serde.h"

namespace mrl {
namespace server {

namespace {

// Reflected CRC-32 (IEEE 802.3), table-driven, byte at a time. The table is
// built once on first use; lookup allocates nothing.
const std::array<std::uint32_t, 256>& CrcTable() {
  static const std::array<std::uint32_t, 256> table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int bit = 0; bit < 8; ++bit) {
        c = (c & 1) != 0 ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  return table;
}

void PutU16Le(std::vector<std::uint8_t>* out, std::uint16_t v) {
  out->push_back(v & 0xff);
  out->push_back((v >> 8) & 0xff);
}

void PutU32Le(std::vector<std::uint8_t>* out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out->push_back((v >> (8 * i)) & 0xff);
}

void PutU64Le(std::vector<std::uint8_t>* out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out->push_back((v >> (8 * i)) & 0xff);
}

std::uint32_t LoadU32Le(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) |
         (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
}

void StoreU32Le(std::uint8_t* p, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) p[i] = (v >> (8 * i)) & 0xff;
}

double LoadDoubleLe(const std::uint8_t* p) {
  std::uint64_t bits = 0;
  for (int i = 0; i < 8; ++i) {
    bits |= static_cast<std::uint64_t>(p[i]) << (8 * i);
  }
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

/// Reads a u16-length-prefixed name and validates it. The view borrows from
/// the payload buffer underlying `reader`.
bool GetName(BinaryReader* reader, const std::uint8_t* payload,
             std::size_t payload_len, bool allow_empty,
             std::string_view* out) {
  std::uint16_t n;
  if (!reader->GetU16(&n)) return false;
  if (n > reader->Remaining()) {
    reader->Fail("name length exceeds payload");
    return false;
  }
  const std::size_t pos = payload_len - reader->Remaining();
  *out = std::string_view(reinterpret_cast<const char*>(payload) + pos, n);
  // Advance the reader past the name bytes.
  for (std::uint16_t i = 0; i < n; ++i) {
    std::uint8_t ignored;
    if (!reader->GetU8(&ignored)) return false;
  }
  if (out->empty() ? !allow_empty : !IsValidTenantName(*out)) {
    reader->Fail("invalid tenant name");
    return false;
  }
  return true;
}

Status RequireAtEnd(const BinaryReader& reader) {
  if (!reader.status().ok()) return reader.status();
  if (reader.Remaining() != 0) {
    return Status::InvalidArgument("trailing bytes after request payload");
  }
  return Status::OK();
}

/// Reads and validates the TenantConfig field block shared by
/// CREATE_SKETCH and RESTORE.
Status GetConfig(BinaryReader* reader, TenantConfig* config) {
  std::uint8_t kind;
  std::uint32_t num_shards;
  if (!reader->GetU8(&kind) || !reader->GetDouble(&config->eps) ||
      !reader->GetDouble(&config->delta) || !reader->GetU32(&num_shards) ||
      !reader->GetU64(&config->seed)) {
    return reader->status();
  }
  if (!IsKnownSketchKind(kind)) {
    return Status::InvalidArgument("unknown sketch kind " +
                                   std::to_string(kind));
  }
  config->kind = static_cast<SketchKind>(kind);
  if (!std::isfinite(config->eps) || config->eps <= 0 || config->eps > 0.5) {
    return Status::InvalidArgument("eps must be in (0, 0.5]");
  }
  if (!std::isfinite(config->delta) || config->delta <= 0 ||
      config->delta >= 1) {
    return Status::InvalidArgument("delta must be in (0, 1)");
  }
  if (num_shards < 1 || num_shards > 1024) {
    return Status::InvalidArgument("num_shards must be in [1, 1024]");
  }
  config->num_shards = static_cast<std::int32_t>(num_shards);
  return Status::OK();
}

}  // namespace

bool IsKnownMsgType(std::uint8_t type) {
  return type >= static_cast<std::uint8_t>(MsgType::kCreateSketch) &&
         type <= static_cast<std::uint8_t>(MsgType::kRestore);
}

bool IsKnownSketchKind(std::uint8_t kind) {
  return kind <= static_cast<std::uint8_t>(SketchKind::kDetReservoir);
}

std::string_view SketchKindName(SketchKind kind) {
  switch (kind) {
    case SketchKind::kUnknownN:
      return "unknown_n";
    case SketchKind::kSharded:
      return "sharded";
    case SketchKind::kKll:
      return "kll";
    case SketchKind::kDetReservoir:
      return "det_reservoir";
  }
  return "invalid";
}

std::uint32_t Crc32(const std::uint8_t* data, std::size_t n) {
  const std::array<std::uint32_t, 256>& table = CrcTable();
  std::uint32_t crc = 0xFFFFFFFFu;
  for (std::size_t i = 0; i < n; ++i) {
    crc = table[(crc ^ data[i]) & 0xff] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

bool IsValidTenantName(std::string_view name) {
  if (name.empty() || name.size() > kMaxTenantNameLen) return false;
  if (name.front() == '.') return false;
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == '.' ||
                    c == '-';
    if (!ok) return false;
  }
  return true;
}

// ---------------------------------------------------------------------------
// Frame scaffolding

Result<FrameView> DecodeFrame(const std::uint8_t* data, std::size_t size) {
  if (size < 4) {
    return Status::OutOfRange("incomplete frame: length prefix missing");
  }
  const std::uint32_t body_len = LoadU32Le(data);
  if (body_len < kFrameHeaderSize - 4 ||
      body_len > kMaxPayload + (kFrameHeaderSize - 4)) {
    return Status::InvalidArgument("frame length out of bounds");
  }
  if (size < 4 + static_cast<std::size_t>(body_len)) {
    return Status::OutOfRange("incomplete frame: body not yet buffered");
  }
  Result<FrameView> body = DecodeFrameBody(data + 4, body_len);
  if (!body.ok()) return body.status();
  FrameView view = body.value();
  view.frame_size = 4 + static_cast<std::size_t>(body_len);
  return view;
}

Result<FrameView> DecodeFrameBody(const std::uint8_t* body, std::size_t len) {
  if (len < kFrameHeaderSize - 4 || len > kMaxPayload + (kFrameHeaderSize - 4)) {
    return Status::InvalidArgument("frame body length out of bounds");
  }
  const std::uint8_t version = body[0];
  const std::uint8_t type = body[1];
  const std::uint16_t reserved =
      static_cast<std::uint16_t>(body[2] | (body[3] << 8));
  const std::uint32_t crc = LoadU32Le(body + 4);
  if (version != kProtocolVersion) {
    return Status::InvalidArgument("unsupported protocol version");
  }
  if (!IsKnownMsgType(type)) {
    return Status::InvalidArgument("unknown frame type");
  }
  if (reserved != 0) {
    return Status::InvalidArgument("reserved frame bits set");
  }
  FrameView view;
  view.type = static_cast<MsgType>(type);
  view.payload = body + (kFrameHeaderSize - 4);
  view.payload_len = len - (kFrameHeaderSize - 4);
  view.frame_size = 4 + len;
  if (Crc32(view.payload, view.payload_len) != crc) {
    return Status::InvalidArgument("frame payload CRC mismatch");
  }
  return view;
}

FrameBuilder::FrameBuilder(MsgType type, std::vector<std::uint8_t>* out)
    : out_(out), frame_start_(out->size()) {
  PutU32Le(out_, 0);  // length, backpatched by Finish
  out_->push_back(kProtocolVersion);
  out_->push_back(static_cast<std::uint8_t>(type));
  PutU16Le(out_, 0);  // reserved
  PutU32Le(out_, 0);  // crc, backpatched by Finish
}

void FrameBuilder::PutU16(std::uint16_t v) { PutU16Le(out_, v); }
void FrameBuilder::PutU32(std::uint32_t v) { PutU32Le(out_, v); }
void FrameBuilder::PutU64(std::uint64_t v) { PutU64Le(out_, v); }

void FrameBuilder::PutDouble(double v) {
  std::uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  PutU64Le(out_, bits);
}

void FrameBuilder::PutName(std::string_view name) {
  MRL_CHECK_LE(name.size(), kMaxTenantNameLen);
  PutU16(static_cast<std::uint16_t>(name.size()));
  PutBytes(reinterpret_cast<const std::uint8_t*>(name.data()), name.size());
}

void FrameBuilder::PutBytes(const std::uint8_t* data, std::size_t n) {
  out_->insert(out_->end(), data, data + n);
}

void FrameBuilder::Finish() {
  const std::size_t payload_len =
      out_->size() - frame_start_ - kFrameHeaderSize;
  MRL_CHECK_LE(payload_len, kMaxPayload) << "frame payload exceeds cap";
  std::uint8_t* frame = out_->data() + frame_start_;
  StoreU32Le(frame, static_cast<std::uint32_t>(payload_len +
                                               (kFrameHeaderSize - 4)));
  StoreU32Le(frame + 8,
             Crc32(frame + kFrameHeaderSize, payload_len));
}

// ---------------------------------------------------------------------------
// Request encoders

void EncodeCreateSketch(std::string_view name, const TenantConfig& config,
                        std::vector<std::uint8_t>* out) {
  FrameBuilder frame(MsgType::kCreateSketch, out);
  frame.PutName(name);
  frame.PutU8(static_cast<std::uint8_t>(config.kind));
  frame.PutDouble(config.eps);
  frame.PutDouble(config.delta);
  frame.PutU32(static_cast<std::uint32_t>(config.num_shards));
  frame.PutU64(config.seed);
  frame.Finish();
}

void EncodeAddBatch(std::string_view name, std::span<const Value> values,
                    std::vector<std::uint8_t>* out) {
  FrameBuilder frame(MsgType::kAddBatch, out);
  frame.PutName(name);
  frame.PutU64(values.size());
  for (Value v : values) frame.PutDouble(v);
  frame.Finish();
}

void EncodeQuery(std::string_view name, double phi,
                 std::vector<std::uint8_t>* out) {
  FrameBuilder frame(MsgType::kQuery, out);
  frame.PutName(name);
  frame.PutDouble(phi);
  frame.Finish();
}

void EncodeQueryMulti(std::string_view name, std::span<const double> phis,
                      std::vector<std::uint8_t>* out) {
  FrameBuilder frame(MsgType::kQueryMulti, out);
  frame.PutName(name);
  frame.PutU64(phis.size());
  for (double phi : phis) frame.PutDouble(phi);
  frame.Finish();
}

void EncodeNameRequest(MsgType type, std::string_view name,
                       std::vector<std::uint8_t>* out) {
  MRL_CHECK(type == MsgType::kSnapshot || type == MsgType::kDelete ||
            type == MsgType::kStats || type == MsgType::kFetchSummary);
  FrameBuilder frame(type, out);
  frame.PutName(name);
  frame.Finish();
}

void EncodePing(std::vector<std::uint8_t>* out) {
  FrameBuilder frame(MsgType::kPing, out);
  frame.Finish();
}

void EncodeRestore(std::string_view name, const TenantConfig& config,
                   std::span<const std::uint8_t> blob,
                   std::vector<std::uint8_t>* out) {
  FrameBuilder frame(MsgType::kRestore, out);
  frame.PutName(name);
  frame.PutU8(static_cast<std::uint8_t>(config.kind));
  frame.PutDouble(config.eps);
  frame.PutDouble(config.delta);
  frame.PutU32(static_cast<std::uint32_t>(config.num_shards));
  frame.PutU64(config.seed);
  frame.PutU32(static_cast<std::uint32_t>(blob.size()));
  frame.PutBytes(blob.data(), blob.size());
  frame.Finish();
}

// ---------------------------------------------------------------------------
// Request decoders

Result<CreateSketchRequest> DecodeCreateSketch(const std::uint8_t* payload,
                                               std::size_t len) {
  BinaryReader reader(payload, len);
  CreateSketchRequest req;
  if (!GetName(&reader, payload, len, /*allow_empty=*/false, &req.name)) {
    return reader.status();
  }
  MRL_RETURN_IF_ERROR(GetConfig(&reader, &req.config));
  MRL_RETURN_IF_ERROR(RequireAtEnd(reader));
  return req;
}

Result<AddBatchRequest> DecodeAddBatch(const std::uint8_t* payload,
                                       std::size_t len) {
  BinaryReader reader(payload, len);
  AddBatchRequest req;
  if (!GetName(&reader, payload, len, /*allow_empty=*/false, &req.name) ||
      !reader.GetU64(&req.count)) {
    return reader.status();
  }
  if (req.count != reader.Remaining() / sizeof(double) ||
      req.count * sizeof(double) != reader.Remaining()) {
    return Status::InvalidArgument(
        "ADD_BATCH count disagrees with payload size");
  }
  req.values_le = payload + (len - reader.Remaining());
  return req;
}

Result<QueryRequest> DecodeQuery(const std::uint8_t* payload,
                                 std::size_t len) {
  BinaryReader reader(payload, len);
  QueryRequest req;
  if (!GetName(&reader, payload, len, /*allow_empty=*/false, &req.name) ||
      !reader.GetDouble(&req.phi)) {
    return reader.status();
  }
  MRL_RETURN_IF_ERROR(RequireAtEnd(reader));
  if (!std::isfinite(req.phi) || req.phi <= 0 || req.phi > 1) {
    return Status::InvalidArgument("phi must be in (0, 1]");
  }
  return req;
}

Result<QueryMultiRequest> DecodeQueryMulti(const std::uint8_t* payload,
                                           std::size_t len) {
  BinaryReader reader(payload, len);
  QueryMultiRequest req;
  if (!GetName(&reader, payload, len, /*allow_empty=*/false, &req.name) ||
      !reader.GetU64(&req.count)) {
    return reader.status();
  }
  if (req.count != reader.Remaining() / sizeof(double) ||
      req.count * sizeof(double) != reader.Remaining()) {
    return Status::InvalidArgument(
        "QUERY_MULTI count disagrees with payload size");
  }
  req.phis_le = payload + (len - reader.Remaining());
  return req;
}

Result<NameRequest> DecodeNameRequest(MsgType type,
                                      const std::uint8_t* payload,
                                      std::size_t len) {
  BinaryReader reader(payload, len);
  NameRequest req;
  const bool allow_empty = type == MsgType::kStats;
  if (!GetName(&reader, payload, len, allow_empty, &req.name)) {
    return reader.status();
  }
  MRL_RETURN_IF_ERROR(RequireAtEnd(reader));
  return req;
}

Status DecodePing(const std::uint8_t* payload, std::size_t len) {
  (void)payload;
  if (len != 0) {
    return Status::InvalidArgument("PING carries no payload");
  }
  return Status::OK();
}

Result<RestoreRequest> DecodeRestore(const std::uint8_t* payload,
                                     std::size_t len) {
  BinaryReader reader(payload, len);
  RestoreRequest req;
  if (!GetName(&reader, payload, len, /*allow_empty=*/false, &req.name)) {
    return reader.status();
  }
  MRL_RETURN_IF_ERROR(GetConfig(&reader, &req.config));
  std::uint32_t blob_len;
  if (!reader.GetU32(&blob_len)) return reader.status();
  if (blob_len != reader.Remaining()) {
    return Status::InvalidArgument(
        "RESTORE blob length disagrees with payload size");
  }
  req.blob = payload + (len - reader.Remaining());
  req.blob_len = blob_len;
  return req;
}

std::string_view FrameTenantName(const std::uint8_t* payload,
                                 std::size_t len) {
  if (payload == nullptr || len < 2) return {};
  const std::uint16_t n = static_cast<std::uint16_t>(
      payload[0] | (static_cast<std::uint16_t>(payload[1]) << 8));
  if (static_cast<std::size_t>(n) + 2 > len) return {};
  return std::string_view(reinterpret_cast<const char*>(payload) + 2, n);
}

Status DecodeDoublesInto(const std::uint8_t* le, std::uint64_t count,
                         bool reject_nan, std::vector<double>* out) {
  out->clear();
  out->resize(static_cast<std::size_t>(count));
  for (std::uint64_t i = 0; i < count; ++i) {
    const double v = LoadDoubleLe(le + i * sizeof(double));
    if (reject_nan && std::isnan(v)) {
      out->clear();
      return Status::InvalidArgument("NaN rejected at the protocol boundary");
    }
    (*out)[static_cast<std::size_t>(i)] = v;
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Responses

Status ResponseView::ToStatus() const {
  if (code == StatusCode::kOk) return Status::OK();
  return Status(code, std::string(message));
}

namespace {

/// Starts a kResponse frame with the shared header; the caller appends the
/// body and calls Finish.
FrameBuilder BeginResponse(MsgType request_type, const Status& status,
                           std::vector<std::uint8_t>* out) {
  FrameBuilder frame(MsgType::kResponse, out);
  frame.PutU8(static_cast<std::uint8_t>(request_type));
  frame.PutU8(static_cast<std::uint8_t>(status.code()));
  const std::string& msg = status.message();
  const std::size_t n = msg.size() > 0xFFFF ? 0xFFFF : msg.size();
  frame.PutU16(static_cast<std::uint16_t>(n));
  frame.PutBytes(reinterpret_cast<const std::uint8_t*>(msg.data()), n);
  return frame;
}

}  // namespace

void EncodeErrorResponse(MsgType request_type, const Status& status,
                         std::vector<std::uint8_t>* out) {
  MRL_CHECK(!status.ok());
  FrameBuilder frame = BeginResponse(request_type, status, out);
  frame.Finish();
}

void EncodeEmptyOk(MsgType request_type, std::vector<std::uint8_t>* out) {
  FrameBuilder frame = BeginResponse(request_type, Status::OK(), out);
  frame.Finish();
}

void EncodeAddBatchOk(std::uint64_t new_count,
                      std::vector<std::uint8_t>* out) {
  FrameBuilder frame = BeginResponse(MsgType::kAddBatch, Status::OK(), out);
  frame.PutU64(new_count);
  frame.Finish();
}

void EncodeQueryOk(double value, std::vector<std::uint8_t>* out) {
  FrameBuilder frame = BeginResponse(MsgType::kQuery, Status::OK(), out);
  frame.PutDouble(value);
  frame.Finish();
}

void EncodeQueryMultiOk(std::span<const Value> values,
                        std::vector<std::uint8_t>* out) {
  FrameBuilder frame = BeginResponse(MsgType::kQueryMulti, Status::OK(), out);
  frame.PutU64(values.size());
  for (Value v : values) frame.PutDouble(v);
  frame.Finish();
}

void EncodeSnapshotOk(std::span<const std::uint8_t> blob,
                      std::vector<std::uint8_t>* out) {
  FrameBuilder frame = BeginResponse(MsgType::kSnapshot, Status::OK(), out);
  frame.PutU32(static_cast<std::uint32_t>(blob.size()));
  frame.PutBytes(blob.data(), blob.size());
  frame.Finish();
}

void EncodeFetchSummaryOk(std::span<const std::uint8_t> blob,
                          std::vector<std::uint8_t>* out) {
  FrameBuilder frame =
      BeginResponse(MsgType::kFetchSummary, Status::OK(), out);
  frame.PutU32(static_cast<std::uint32_t>(blob.size()));
  frame.PutBytes(blob.data(), blob.size());
  frame.Finish();
}

void EncodeStatsOk(const StatsReply& stats, std::vector<std::uint8_t>* out) {
  FrameBuilder frame = BeginResponse(MsgType::kStats, Status::OK(), out);
  frame.PutU64(stats.num_tenants);
  frame.PutU64(stats.total_count);
  frame.PutU8(stats.tenant_present ? 1 : 0);
  frame.PutU8(static_cast<std::uint8_t>(stats.tenant_kind));
  frame.PutU64(stats.tenant_count);
  frame.PutU64(stats.tenant_memory_elements);
  frame.Finish();
}

Result<ResponseView> DecodeResponse(const std::uint8_t* payload,
                                    std::size_t len) {
  BinaryReader reader(payload, len);
  std::uint8_t request_type, code;
  std::uint16_t msg_len;
  if (!reader.GetU8(&request_type) || !reader.GetU8(&code) ||
      !reader.GetU16(&msg_len)) {
    return reader.status();
  }
  if (!IsKnownMsgType(request_type) ||
      request_type == static_cast<std::uint8_t>(MsgType::kResponse)) {
    return Status::InvalidArgument("response echoes unknown request type");
  }
  if (code > static_cast<std::uint8_t>(StatusCode::kUnimplemented)) {
    return Status::InvalidArgument("response status code out of range");
  }
  if (msg_len > reader.Remaining()) {
    return Status::InvalidArgument("response message exceeds payload");
  }
  ResponseView view;
  view.request_type = static_cast<MsgType>(request_type);
  view.code = static_cast<StatusCode>(code);
  const std::size_t msg_pos = len - reader.Remaining();
  view.message = std::string_view(
      reinterpret_cast<const char*>(payload) + msg_pos, msg_len);
  view.body = payload + msg_pos + msg_len;
  view.body_len = len - msg_pos - msg_len;
  if (view.code == StatusCode::kOk && msg_len != 0) {
    return Status::InvalidArgument("OK response carries an error message");
  }
  if (view.code != StatusCode::kOk && view.body_len != 0) {
    return Status::InvalidArgument("error response carries a body");
  }
  return view;
}

namespace {

Status RequireOkBody(const ResponseView& response, MsgType expect) {
  if (response.request_type != expect) {
    return Status::InvalidArgument("response for a different request type");
  }
  MRL_RETURN_IF_ERROR(response.ToStatus());
  return Status::OK();
}

}  // namespace

Result<std::uint64_t> DecodeAddBatchOk(const ResponseView& response) {
  MRL_RETURN_IF_ERROR(RequireOkBody(response, MsgType::kAddBatch));
  BinaryReader reader(response.body, response.body_len);
  std::uint64_t count;
  if (!reader.GetU64(&count)) return reader.status();
  MRL_RETURN_IF_ERROR(RequireAtEnd(reader));
  return count;
}

Result<double> DecodeQueryOk(const ResponseView& response) {
  MRL_RETURN_IF_ERROR(RequireOkBody(response, MsgType::kQuery));
  BinaryReader reader(response.body, response.body_len);
  double value;
  if (!reader.GetDouble(&value)) return reader.status();
  MRL_RETURN_IF_ERROR(RequireAtEnd(reader));
  return value;
}

Status DecodeQueryMultiOk(const ResponseView& response,
                          std::vector<Value>* out) {
  MRL_RETURN_IF_ERROR(RequireOkBody(response, MsgType::kQueryMulti));
  BinaryReader reader(response.body, response.body_len);
  std::uint64_t count;
  if (!reader.GetU64(&count)) return reader.status();
  if (count != reader.Remaining() / sizeof(double) ||
      count * sizeof(double) != reader.Remaining()) {
    return Status::InvalidArgument(
        "QUERY_MULTI reply count disagrees with payload size");
  }
  return DecodeDoublesInto(response.body + (response.body_len -
                                            reader.Remaining()),
                           count, /*reject_nan=*/false, out);
}

Status DecodeSnapshotOk(const ResponseView& response,
                        std::vector<std::uint8_t>* out) {
  MRL_RETURN_IF_ERROR(RequireOkBody(response, MsgType::kSnapshot));
  BinaryReader reader(response.body, response.body_len);
  std::uint32_t blob_len;
  if (!reader.GetU32(&blob_len)) return reader.status();
  if (blob_len != reader.Remaining()) {
    return Status::InvalidArgument(
        "SNAPSHOT reply length disagrees with payload size");
  }
  const std::uint8_t* blob =
      response.body + (response.body_len - reader.Remaining());
  out->assign(blob, blob + blob_len);
  return Status::OK();
}

Result<StatsReply> DecodeStatsOk(const ResponseView& response) {
  MRL_RETURN_IF_ERROR(RequireOkBody(response, MsgType::kStats));
  BinaryReader reader(response.body, response.body_len);
  StatsReply stats;
  std::uint8_t present, kind;
  if (!reader.GetU64(&stats.num_tenants) ||
      !reader.GetU64(&stats.total_count) || !reader.GetU8(&present) ||
      !reader.GetU8(&kind) || !reader.GetU64(&stats.tenant_count) ||
      !reader.GetU64(&stats.tenant_memory_elements)) {
    return reader.status();
  }
  MRL_RETURN_IF_ERROR(RequireAtEnd(reader));
  if (present > 1 || !IsKnownSketchKind(kind)) {
    return Status::InvalidArgument("STATS reply fields out of range");
  }
  stats.tenant_present = present != 0;
  stats.tenant_kind = static_cast<SketchKind>(kind);
  return stats;
}

Status DecodeFetchSummaryOk(const ResponseView& response,
                            std::vector<std::uint8_t>* out) {
  MRL_RETURN_IF_ERROR(RequireOkBody(response, MsgType::kFetchSummary));
  BinaryReader reader(response.body, response.body_len);
  std::uint32_t blob_len;
  if (!reader.GetU32(&blob_len)) return reader.status();
  if (blob_len != reader.Remaining()) {
    return Status::InvalidArgument(
        "FETCH_SUMMARY reply length disagrees with payload size");
  }
  const std::uint8_t* blob =
      response.body + (response.body_len - reader.Remaining());
  out->assign(blob, blob + blob_len);
  return Status::OK();
}

}  // namespace server
}  // namespace mrl
