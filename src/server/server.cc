#include "server/server.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <iostream>
#include <utility>

#include "server/conn.h"
#include "server/protocol.h"
#include "util/logging.h"

namespace mrl {
namespace server {

namespace {

/// Listen backlog. C10k bursts arrive faster than the acceptor drains
/// them; the kernel clamps this to somaxconn.
constexpr int kListenBacklog = 4096;

Status StatusFromErrno(const char* what) {
  return Status::Internal(std::string(what) + ": " + std::strerror(errno));
}

void SetNonBlocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags >= 0) ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

int ResolveNumShards(int requested) {
  if (requested > 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

}  // namespace

QuantileServer::QuantileServer(ServerOptions options)
    : options_(std::move(options)), registry_(options_.registry) {}

Result<std::unique_ptr<QuantileServer>> QuantileServer::Create(
    ServerOptions options) {
  if (options.uds_path.empty() && options.tcp_port == 0) {
    return Status::InvalidArgument("no listener configured");
  }
  const int num_shards = ResolveNumShards(options.num_shards);
  if (num_shards < 1 || num_shards > 256) {
    return Status::InvalidArgument("num_shards must be in [1, 256]");
  }
  options.num_shards = num_shards;
  // Partition the registry exactly as the shards are laid out, so shard i
  // exclusively serves partition i once connections migrate home.
  options.registry.num_partitions = static_cast<std::size_t>(num_shards);
  if (options.write_buffer_cap == 0) {
    // One max-size response frame (SNAPSHOT of the largest tenant) plus
    // slack for small responses queued behind it.
    options.write_buffer_cap = kMaxPayload + kFrameHeaderSize + (64u << 10);
  }
  std::unique_ptr<QuantileServer> server(
      new QuantileServer(std::move(options)));
  MRL_RETURN_IF_ERROR(server->Start());
  return server;
}

Status QuantileServer::Start() {
  MRL_RETURN_IF_ERROR(registry_.RecoverFromDisk());

  if (!options_.uds_path.empty()) {
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (options_.uds_path.size() >= sizeof(addr.sun_path)) {
      return Status::InvalidArgument("uds_path too long");
    }
    std::memcpy(addr.sun_path, options_.uds_path.c_str(),
                options_.uds_path.size() + 1);
    uds_listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (uds_listen_fd_ < 0) return StatusFromErrno("socket(AF_UNIX)");
    ::unlink(options_.uds_path.c_str());
    if (::bind(uds_listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
               sizeof(addr)) != 0 ||
        ::listen(uds_listen_fd_, kListenBacklog) != 0) {
      const Status status = StatusFromErrno("bind/listen(AF_UNIX)");
      ::close(uds_listen_fd_);
      uds_listen_fd_ = -1;
      return status;
    }
    SetNonBlocking(uds_listen_fd_);
  }

  if (options_.tcp_port != 0) {
    tcp_listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (tcp_listen_fd_ < 0) return StatusFromErrno("socket(AF_INET)");
    const int one = 1;
    ::setsockopt(tcp_listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one,
                 sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(options_.tcp_port);
    if (::bind(tcp_listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
               sizeof(addr)) != 0 ||
        ::listen(tcp_listen_fd_, kListenBacklog) != 0) {
      const Status status = StatusFromErrno("bind/listen(AF_INET)");
      ::close(tcp_listen_fd_);
      tcp_listen_fd_ = -1;
      return status;
    }
    SetNonBlocking(tcp_listen_fd_);
    sockaddr_in bound{};
    socklen_t bound_len = sizeof(bound);
    if (::getsockname(tcp_listen_fd_, reinterpret_cast<sockaddr*>(&bound),
                      &bound_len) == 0) {
      bound_tcp_port_ = ntohs(bound.sin_port);
    }
  }

  Result<EventLoop> accept_loop = EventLoop::Create();
  if (!accept_loop.ok()) return accept_loop.status();
  accept_loop_.emplace(std::move(accept_loop).value());

  shards_.reserve(static_cast<std::size_t>(options_.num_shards));
  for (int i = 0; i < options_.num_shards; ++i) {
    shards_.push_back(std::make_unique<Shard>(
        static_cast<std::size_t>(i), &registry_, options_.write_buffer_cap));
  }
  for (std::unique_ptr<Shard>& shard : shards_) {
    shard->SetPeers(shards_);
  }
  running_.store(true, std::memory_order_release);
  for (std::unique_ptr<Shard>& shard : shards_) {
    MRL_RETURN_IF_ERROR(shard->Start());
  }
  acceptor_ = std::thread(&QuantileServer::AcceptLoop, this);
  if (options_.checkpoint_interval_ms > 0 &&
      !options_.registry.checkpoint_path.empty()) {
    housekeeper_ = std::thread(&QuantileServer::HousekeepingLoop, this);
  }
  return Status::OK();
}

QuantileServer::~QuantileServer() { Stop(); }

void QuantileServer::Stop() {
  const bool was_running = running_.exchange(false, std::memory_order_acq_rel);
  if (!was_running) return;
  if (accept_loop_.has_value()) accept_loop_->Wake();
  if (acceptor_.joinable()) acceptor_.join();
  // Wind the shards down in parallel: signal them all, then reap.
  for (std::unique_ptr<Shard>& shard : shards_) shard->RequestStop();
  for (std::unique_ptr<Shard>& shard : shards_) shard->Join();
  if (housekeeper_.joinable()) {
    {
      MutexLock lock(housekeeper_mu_);
      housekeeper_stop_ = true;
    }
    housekeeper_cv_.notify_all();
    housekeeper_.join();
  }
  if (uds_listen_fd_ >= 0) {
    ::close(uds_listen_fd_);
    uds_listen_fd_ = -1;
    ::unlink(options_.uds_path.c_str());
  }
  if (tcp_listen_fd_ >= 0) {
    ::close(tcp_listen_fd_);
    tcp_listen_fd_ = -1;
  }
  if (options_.checkpoint_on_stop) {
    const Status status = registry_.CheckpointNow();
    if (!status.ok()) {
      std::cerr << "mrlquantd: checkpoint on stop failed: "
                << status.message() << '\n';
    }
  }
}

void QuantileServer::AcceptLoop() {
  int listeners[2];
  int num_listeners = 0;
  if (uds_listen_fd_ >= 0) listeners[num_listeners++] = uds_listen_fd_;
  if (tcp_listen_fd_ >= 0) listeners[num_listeners++] = tcp_listen_fd_;
  for (int i = 0; i < num_listeners; ++i) {
    if (!accept_loop_->Add(listeners[i], EPOLLIN, &listeners[i]).ok()) {
      return;
    }
  }
  std::size_t next_shard = 0;
  epoll_event events[4];
  while (running_.load(std::memory_order_acquire)) {
    const int n = accept_loop_->Wait(events, 4, /*timeout_ms=*/-1);
    if (n < 0) return;
    for (int i = 0; i < n; ++i) {
      if (events[i].data.ptr == nullptr) {
        accept_loop_->ConsumeWake();
        continue;  // the while condition re-checks running_
      }
      const int listen_fd = *static_cast<int*>(events[i].data.ptr);
      for (;;) {
        const int fd =
            ::accept4(listen_fd, nullptr, nullptr,
                      SOCK_NONBLOCK | SOCK_CLOEXEC);
        if (fd < 0) break;  // EAGAIN: drained; anything else: retry on event
        if (listen_fd == tcp_listen_fd_) {
          const int one = 1;
          ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
        }
        // Round-robin placement; the shard re-routes to the tenant's home
        // shard when the first frame arrives.
        shards_[next_shard]->Adopt(
            std::make_unique<Conn>(fd, options_.write_buffer_cap));
        next_shard = (next_shard + 1) % shards_.size();
      }
    }
  }
}

void QuantileServer::HousekeepingLoop() {
  const auto interval =
      std::chrono::milliseconds(options_.checkpoint_interval_ms);
  for (;;) {
    {
      MutexLock lock(housekeeper_mu_);
      // A spurious wakeup just checkpoints early — harmless, and it keeps
      // the stop flag read under its declared capability. The lock is
      // released before CheckpointNow so housekeeper_mu_ stays a true leaf
      // (never held across a registry lock).
      housekeeper_cv_.wait_for(lock.native(), interval);
      if (housekeeper_stop_) return;
    }
    const Status status = registry_.CheckpointNow();
    if (!status.ok()) {
      std::cerr << "mrlquantd: periodic checkpoint failed: "
                << status.message() << '\n';
    }
  }
}

}  // namespace server
}  // namespace mrl
