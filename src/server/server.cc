#include "server/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <iostream>
#include <utility>

#include "server/protocol.h"
#include "util/logging.h"

namespace mrl {
namespace server {

namespace {

/// How long blocking socket waits sleep before re-checking running_.
constexpr int kPollIntervalMs = 100;

Status StatusFromErrno(const char* what) {
  return Status::Internal(std::string(what) + ": " + std::strerror(errno));
}

/// Reads exactly `n` bytes. Returns 0 on success, -1 on transport error,
/// and 1 on clean EOF before any byte (only possible when allow_eof).
int ReadFull(int fd, std::uint8_t* buf, std::size_t n,
             const std::atomic<bool>& running, bool allow_eof) {
  std::size_t got = 0;
  while (got < n) {
    pollfd pfd{fd, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, kPollIntervalMs);
    if (!running.load(std::memory_order_relaxed)) return -1;
    if (ready < 0) {
      if (errno == EINTR) continue;
      return -1;
    }
    if (ready == 0) continue;
    const ssize_t r = ::recv(fd, buf + got, n - got, 0);
    if (r == 0) return (got == 0 && allow_eof) ? 1 : -1;
    if (r < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) continue;
      return -1;
    }
    got += static_cast<std::size_t>(r);
  }
  return 0;
}

bool WriteFull(int fd, const std::uint8_t* buf, std::size_t n) {
  std::size_t sent = 0;
  while (sent < n) {
    const ssize_t w = ::send(fd, buf + sent, n - sent, MSG_NOSIGNAL);
    if (w < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) continue;
      return false;
    }
    sent += static_cast<std::size_t>(w);
  }
  return true;
}

}  // namespace

QuantileServer::QuantileServer(ServerOptions options)
    : options_(std::move(options)), registry_(options_.registry) {}

Result<std::unique_ptr<QuantileServer>> QuantileServer::Create(
    ServerOptions options) {
  if (options.uds_path.empty() && options.tcp_port == 0) {
    return Status::InvalidArgument("no listener configured");
  }
  if (options.num_workers < 1 || options.num_workers > 256) {
    return Status::InvalidArgument("num_workers must be in [1, 256]");
  }
  std::unique_ptr<QuantileServer> server(
      new QuantileServer(std::move(options)));
  MRL_RETURN_IF_ERROR(server->Start());
  return server;
}

Status QuantileServer::Start() {
  MRL_RETURN_IF_ERROR(registry_.RecoverFromDisk());

  if (!options_.uds_path.empty()) {
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (options_.uds_path.size() >= sizeof(addr.sun_path)) {
      return Status::InvalidArgument("uds_path too long");
    }
    std::memcpy(addr.sun_path, options_.uds_path.c_str(),
                options_.uds_path.size() + 1);
    uds_listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (uds_listen_fd_ < 0) return StatusFromErrno("socket(AF_UNIX)");
    ::unlink(options_.uds_path.c_str());
    if (::bind(uds_listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
               sizeof(addr)) != 0 ||
        ::listen(uds_listen_fd_, 64) != 0) {
      const Status status = StatusFromErrno("bind/listen(AF_UNIX)");
      ::close(uds_listen_fd_);
      uds_listen_fd_ = -1;
      return status;
    }
  }

  if (options_.tcp_port != 0 || options_.uds_path.empty()) {
    if (options_.tcp_port != 0) {
      tcp_listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
      if (tcp_listen_fd_ < 0) return StatusFromErrno("socket(AF_INET)");
      const int one = 1;
      ::setsockopt(tcp_listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one,
                   sizeof(one));
      sockaddr_in addr{};
      addr.sin_family = AF_INET;
      addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
      addr.sin_port = htons(options_.tcp_port);
      if (::bind(tcp_listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
                 sizeof(addr)) != 0 ||
          ::listen(tcp_listen_fd_, 64) != 0) {
        const Status status = StatusFromErrno("bind/listen(AF_INET)");
        ::close(tcp_listen_fd_);
        tcp_listen_fd_ = -1;
        return status;
      }
      sockaddr_in bound{};
      socklen_t bound_len = sizeof(bound);
      if (::getsockname(tcp_listen_fd_,
                        reinterpret_cast<sockaddr*>(&bound),
                        &bound_len) == 0) {
        bound_tcp_port_ = ntohs(bound.sin_port);
      }
    }
  }

  running_.store(true, std::memory_order_release);
  acceptor_ = std::thread(&QuantileServer::AcceptLoop, this);
  workers_.reserve(static_cast<std::size_t>(options_.num_workers));
  for (int i = 0; i < options_.num_workers; ++i) {
    workers_.emplace_back(&QuantileServer::WorkerLoop, this);
  }
  if (options_.checkpoint_interval_ms > 0 &&
      !options_.registry.checkpoint_path.empty()) {
    housekeeper_ = std::thread(&QuantileServer::HousekeepingLoop, this);
  }
  return Status::OK();
}

QuantileServer::~QuantileServer() { Stop(); }

void QuantileServer::Stop() {
  bool was_running = running_.exchange(false, std::memory_order_acq_rel);
  if (!was_running) return;
  queue_cv_.notify_all();
  if (acceptor_.joinable()) acceptor_.join();
  for (std::thread& w : workers_) {
    if (w.joinable()) w.join();
  }
  if (housekeeper_.joinable()) housekeeper_.join();
  {
    MutexLock lock(queue_mu_);
    for (int fd : pending_fds_) ::close(fd);
    pending_fds_.clear();
  }
  if (uds_listen_fd_ >= 0) {
    ::close(uds_listen_fd_);
    uds_listen_fd_ = -1;
    ::unlink(options_.uds_path.c_str());
  }
  if (tcp_listen_fd_ >= 0) {
    ::close(tcp_listen_fd_);
    tcp_listen_fd_ = -1;
  }
  if (options_.checkpoint_on_stop) {
    const Status status = registry_.CheckpointNow();
    if (!status.ok()) {
      std::cerr << "mrlquantd: checkpoint on stop failed: "
                << status.message() << '\n';
    }
  }
}

void QuantileServer::AcceptLoop() {
  pollfd pfds[2];
  int nfds = 0;
  if (uds_listen_fd_ >= 0) pfds[nfds++] = {uds_listen_fd_, POLLIN, 0};
  if (tcp_listen_fd_ >= 0) pfds[nfds++] = {tcp_listen_fd_, POLLIN, 0};
  while (running_.load(std::memory_order_acquire)) {
    for (int i = 0; i < nfds; ++i) pfds[i].revents = 0;
    const int ready = ::poll(pfds, static_cast<nfds_t>(nfds),
                             kPollIntervalMs);
    if (ready <= 0) continue;
    for (int i = 0; i < nfds; ++i) {
      if ((pfds[i].revents & POLLIN) == 0) continue;
      const int fd = ::accept(pfds[i].fd, nullptr, nullptr);
      if (fd < 0) continue;
      if (pfds[i].fd == tcp_listen_fd_) {
        const int one = 1;
        ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      }
      {
        MutexLock lock(queue_mu_);
        pending_fds_.push_back(fd);
      }
      queue_cv_.notify_one();
    }
  }
}

void QuantileServer::WorkerLoop() {
  WorkerScratch scratch;
  while (true) {
    int fd = -1;
    {
      MutexLock lock(queue_mu_);
      // Open-coded predicate loop (not the lambda overload): the lambda's
      // body would be analysed as a separate function with no capability
      // context, defeating the GUARDED_BY on pending_fds_. The condvar
      // reacquires queue_mu_ before every predicate evaluation, so the
      // scoped capability is genuinely held at each read.
      while (pending_fds_.empty() &&
             running_.load(std::memory_order_acquire)) {
        queue_cv_.wait(lock.native());
      }
      if (!running_.load(std::memory_order_acquire)) return;
      fd = pending_fds_.front();
      pending_fds_.pop_front();
    }
    ServeConnection(fd, &scratch);
    ::close(fd);
  }
}

void QuantileServer::HousekeepingLoop() {
  const auto interval =
      std::chrono::milliseconds(options_.checkpoint_interval_ms);
  auto next = std::chrono::steady_clock::now() + interval;
  while (running_.load(std::memory_order_acquire)) {
    std::this_thread::sleep_for(std::chrono::milliseconds(kPollIntervalMs));
    if (std::chrono::steady_clock::now() < next) continue;
    const Status status = registry_.CheckpointNow();
    if (!status.ok()) {
      std::cerr << "mrlquantd: periodic checkpoint failed: "
                << status.message() << '\n';
    }
    next = std::chrono::steady_clock::now() + interval;
  }
}

void QuantileServer::ServeConnection(int fd, WorkerScratch* scratch) {
  while (running_.load(std::memory_order_acquire)) {
    std::uint8_t prefix[4];
    const int r = ReadFull(fd, prefix, sizeof(prefix), running_,
                           /*allow_eof=*/true);
    if (r != 0) return;  // EOF or transport error: drop the connection
    const std::uint32_t body_len =
        static_cast<std::uint32_t>(prefix[0]) |
        (static_cast<std::uint32_t>(prefix[1]) << 8) |
        (static_cast<std::uint32_t>(prefix[2]) << 16) |
        (static_cast<std::uint32_t>(prefix[3]) << 24);
    if (body_len < kFrameHeaderSize - 4 ||
        body_len > kMaxPayload + kFrameHeaderSize - 4) {
      return;  // unframeable garbage: no way to resync a byte stream
    }
    scratch->frame.resize(body_len);
    if (ReadFull(fd, scratch->frame.data(), body_len, running_,
                 /*allow_eof=*/false) != 0) {
      return;
    }
    Result<FrameView> frame =
        DecodeFrameBody(scratch->frame.data(), body_len);
    scratch->response.clear();
    if (!frame.ok()) {
      // Header parsed but the frame is malformed (bad CRC, unknown type):
      // answer with the error and keep the connection — framing is intact.
      EncodeErrorResponse(MsgType::kResponse, frame.status(),
                          &scratch->response);
    } else if (frame.value().type == MsgType::kResponse) {
      EncodeErrorResponse(
          MsgType::kResponse,
          Status::InvalidArgument("response frame sent to server"),
          &scratch->response);
    } else {
      HandleFrame(frame.value().type, frame.value().payload,
                  frame.value().payload_len, scratch);
    }
    if (!WriteFull(fd, scratch->response.data(), scratch->response.size())) {
      return;
    }
  }
}

void QuantileServer::HandleFrame(MsgType type, const std::uint8_t* payload,
                                 std::size_t payload_len,
                                 WorkerScratch* scratch) {
  std::vector<std::uint8_t>* out = &scratch->response;
  switch (type) {
    case MsgType::kCreateSketch: {
      Result<CreateSketchRequest> req = DecodeCreateSketch(payload,
                                                           payload_len);
      if (!req.ok()) return EncodeErrorResponse(type, req.status(), out);
      const Status status =
          registry_.Create(req.value().name, req.value().config);
      if (!status.ok()) return EncodeErrorResponse(type, status, out);
      return EncodeEmptyOk(type, out);
    }
    case MsgType::kAddBatch: {
      Result<AddBatchRequest> req = DecodeAddBatch(payload, payload_len);
      if (!req.ok()) return EncodeErrorResponse(type, req.status(), out);
      const Status decoded =
          DecodeDoublesInto(req.value().values_le, req.value().count,
                            /*reject_nan=*/true, &scratch->doubles);
      if (!decoded.ok()) return EncodeErrorResponse(type, decoded, out);
      Result<std::uint64_t> count =
          registry_.AddBatch(req.value().name, scratch->doubles);
      if (!count.ok()) return EncodeErrorResponse(type, count.status(), out);
      return EncodeAddBatchOk(count.value(), out);
    }
    case MsgType::kQuery: {
      Result<QueryRequest> req = DecodeQuery(payload, payload_len);
      if (!req.ok()) return EncodeErrorResponse(type, req.status(), out);
      Result<Value> answer =
          registry_.Query(req.value().name, req.value().phi);
      if (!answer.ok()) {
        return EncodeErrorResponse(type, answer.status(), out);
      }
      return EncodeQueryOk(answer.value(), out);
    }
    case MsgType::kQueryMulti: {
      Result<QueryMultiRequest> req = DecodeQueryMulti(payload, payload_len);
      if (!req.ok()) return EncodeErrorResponse(type, req.status(), out);
      const Status decoded =
          DecodeDoublesInto(req.value().phis_le, req.value().count,
                            /*reject_nan=*/true, &scratch->doubles);
      if (!decoded.ok()) return EncodeErrorResponse(type, decoded, out);
      const Status status = registry_.QueryMany(
          req.value().name, scratch->doubles, &scratch->answers);
      if (!status.ok()) return EncodeErrorResponse(type, status, out);
      return EncodeQueryMultiOk(scratch->answers, out);
    }
    case MsgType::kSnapshot: {
      Result<NameRequest> req =
          DecodeNameRequest(type, payload, payload_len);
      if (!req.ok()) return EncodeErrorResponse(type, req.status(), out);
      const Status status =
          registry_.Snapshot(req.value().name, &scratch->blob);
      if (!status.ok()) return EncodeErrorResponse(type, status, out);
      return EncodeSnapshotOk(scratch->blob, out);
    }
    case MsgType::kDelete: {
      Result<NameRequest> req =
          DecodeNameRequest(type, payload, payload_len);
      if (!req.ok()) return EncodeErrorResponse(type, req.status(), out);
      const Status status = registry_.Delete(req.value().name);
      if (!status.ok()) return EncodeErrorResponse(type, status, out);
      return EncodeEmptyOk(type, out);
    }
    case MsgType::kStats: {
      Result<NameRequest> req =
          DecodeNameRequest(type, payload, payload_len);
      if (!req.ok()) return EncodeErrorResponse(type, req.status(), out);
      const RegistryStats global = registry_.GlobalStats();
      StatsReply reply;
      reply.num_tenants = global.num_tenants;
      reply.total_count = global.total_count;
      if (!req.value().name.empty()) {
        const TenantStats tenant = registry_.Stats(req.value().name);
        reply.tenant_present = tenant.present;
        reply.tenant_kind = tenant.config.kind;
        reply.tenant_count = tenant.count;
        reply.tenant_memory_elements = tenant.memory_elements;
      }
      return EncodeStatsOk(reply, out);
    }
    case MsgType::kResponse:
      break;  // rejected by the caller
  }
  EncodeErrorResponse(type, Status::Unimplemented("unhandled request type"),
                      out);
}

}  // namespace server
}  // namespace mrl
