#ifndef MRLQUANT_SERVER_CONN_H_
#define MRLQUANT_SERVER_CONN_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/thread_annotations.h"

namespace mrl {
namespace server {

/// A nonblocking connection with buffered framing, owned by exactly one
/// shard at a time (handed between shards whole, through an MPSC inbox, so
/// no member needs a lock). The read side accumulates raw bytes until
/// complete frames can be carved off; the write side batches every pending
/// response into one flat buffer flushed with a single vectored write per
/// readiness event — that is what makes request pipelining pay: many
/// frames in per readv, many responses out per writev.
///
/// Both buffers are flat vectors with a consumed-prefix offset; they grow
/// to the connection's high-water mark once and are then reused, so the
/// steady-state ingest path performs no heap allocation
/// (bench/server_throughput.cc pins this with a counting operator new).
class Conn {
 public:
  /// Takes ownership of `fd` (closed on destruction). `write_buffer_cap`
  /// bounds the unflushed response backlog; a connection that pipelines
  /// requests faster than it drains responses is answered with a
  /// ResourceExhausted ERROR and closed instead of buffering without
  /// bound.
  Conn(int fd, std::size_t write_buffer_cap);
  ~Conn();

  Conn(const Conn&) = delete;
  Conn& operator=(const Conn&) = delete;

  int fd() const { return fd_; }

  enum class IoResult {
    kOk,     ///< made progress; socket drained to EAGAIN
    kEof,    ///< peer closed its write side (buffered input may remain)
    kError,  ///< transport error; drop the connection
  };

  /// Drains the socket into the input buffer (readv: buffer tail first,
  /// spill chunk second, so a burst larger than the warmed capacity still
  /// lands in one syscall). Call on EPOLLIN readiness.
  MRLQUANT_HOT IoResult FillFromSocket();

  /// Unconsumed input bytes (front at `data()`).
  const std::uint8_t* data() const { return in_.data() + in_head_; }
  std::size_t available() const { return in_.size() - in_head_; }

  /// Consumes `n` bytes of input (one decoded frame). Compacts the buffer
  /// when it empties, so the consumed prefix never grows without bound.
  MRLQUANT_HOT void Consume(std::size_t n);

  /// Response staging area: handlers append whole encoded frames at the
  /// tail. Flush() drains from the front.
  std::vector<std::uint8_t>* out() { return &out_; }
  std::size_t pending_out() const { return out_.size() - out_head_; }
  std::size_t write_buffer_cap() const { return write_buffer_cap_; }

  /// Rolls the response buffer back to `bytes` pending — discards a
  /// response that would overflow the cap (the write-cap ERROR path).
  void RollbackOut(std::size_t bytes) { out_.resize(out_head_ + bytes); }

  /// Writes as much pending response data as the socket accepts (one
  /// writev). kOk with pending_out() == 0 means fully drained; kOk with
  /// bytes remaining means the socket filled up — arm EPOLLOUT and retry
  /// on writability. Call sites never see a partially written frame
  /// boundary: the kernel preserves byte order, only our buffer offset
  /// moves.
  MRLQUANT_HOT IoResult Flush();

  /// Close after the response buffer drains (write-cap overflow, protocol
  /// errors that poison framing, EOF with responses still buffered).
  bool closing = false;
  /// Pinned to its tenant's home shard (or confirmed shard-agnostic);
  /// re-routing is considered only before the first frame is processed.
  bool routed = false;
  /// Registered EPOLLOUT interest (response backlog waiting for the
  /// socket); tracked here so the shard only issues epoll_ctl on change.
  bool want_write = false;

 private:
  int fd_;
  std::size_t write_buffer_cap_;

  std::vector<std::uint8_t> in_;
  std::size_t in_head_ = 0;
  std::vector<std::uint8_t> out_;
  std::size_t out_head_ = 0;
};

}  // namespace server
}  // namespace mrl

#endif  // MRLQUANT_SERVER_CONN_H_
