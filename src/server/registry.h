#ifndef MRLQUANT_SERVER_REGISTRY_H_
#define MRLQUANT_SERVER_REGISTRY_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "core/estimator.h"
#include "server/protocol.h"
#include "util/serde.h"
#include "util/status.h"
#include "util/thread_annotations.h"
#include "util/types.h"

namespace mrl {
namespace server {

struct RegistryOptions {
  /// Hard cap on live tenants; creating past it evicts the least recently
  /// used tenant (its sketch is recycled through the free pool).
  std::size_t max_tenants = 64;
  /// Checkpoint file for crash recovery (docs/checkpoint_format.md,
  /// "Registry checkpoint"). Empty disables persistence.
  std::string checkpoint_path;
  /// Deleted/evicted sketches kept around for allocation-free recycling of
  /// tenant slots (QuantileEstimator::Reset(seed)).
  std::size_t max_free_pool = 8;
  /// Backends this server will instantiate; empty means all. CREATE_SKETCH
  /// for a kind outside the list fails with a descriptive error (the
  /// mrlquantd --backends flag feeds this).
  std::vector<SketchKind> allowed_kinds;
};

struct TenantStats {
  bool present = false;
  TenantConfig config;
  std::uint64_t count = 0;
  std::uint64_t memory_elements = 0;
};

struct RegistryStats {
  std::uint64_t num_tenants = 0;
  std::uint64_t total_count = 0;
  std::uint64_t evictions = 0;         ///< LRU evictions since start
  std::uint64_t recycled_creates = 0;  ///< creates served from the free pool
  std::uint64_t checkpoints = 0;       ///< successful CheckpointNow calls
};

/// Multi-tenant sketch registry: named sketches behind a two-level locking
/// scheme. The registry map is guarded by a shared mutex (reads of the
/// directory are concurrent; create/delete/evict are exclusive); each
/// tenant holds its own shared mutex so ingestion into tenant A never
/// blocks queries on tenant B. Within a tenant, AddBatch takes the
/// exclusive lock and queries take the shared lock — exactly the
/// single-writer / concurrent-const-reader contract the sketches document.
///
/// Lock order (statically annotated, checked by -Wthread-safety on Clang):
///
///   map_mu_  →  Tenant::mu
///
/// A thread holding any Tenant::mu must never acquire map_mu_. In
/// practice almost no path nests the two at all: every read path
/// (AddBatch/Query/QueryMany/Stats/Snapshot/GlobalStats/CheckpointNow)
/// shared-locks map_mu_ only long enough to copy out shared_ptr<Tenant>
/// handles, releases it, and only then takes the per-tenant lock for the
/// long sketch work — so a slow tenant operation never stalls directory
/// lookups. The one deliberate nesting is eviction/recycling
/// (EvictOneLocked → RecycleLocked), which takes Tenant::mu while holding
/// map_mu_ exclusively — in the map_mu_ → mu direction, and only when the
/// registry holds the last reference, so the lock is uncontended.
///
/// An operation that races a Delete of the same tenant may still apply to
/// the outgoing instance (it holds a shared_ptr); it never crashes and
/// never touches a recycled sketch — recycling only happens once the
/// registry holds the last reference.
class SketchRegistry {
 public:
  explicit SketchRegistry(RegistryOptions options);

  SketchRegistry(const SketchRegistry&) = delete;
  SketchRegistry& operator=(const SketchRegistry&) = delete;

  /// Creates tenant `name`. FailedPrecondition when it already exists,
  /// InvalidArgument on a bad name or config.
  Status Create(std::string_view name, const TenantConfig& config)
      MRLQUANT_EXCLUDES(map_mu_);

  /// Ingests a batch into tenant `name` (round-robin across shards for
  /// kSharded tenants) and returns the tenant's element count after the
  /// batch. Steady state performs no heap allocation.
  MRLQUANT_HOT Result<std::uint64_t> AddBatch(std::string_view name,
                                              std::span<const Value> values)
      MRLQUANT_EXCLUDES(map_mu_);

  MRLQUANT_HOT Result<Value> Query(std::string_view name, double phi) const
      MRLQUANT_EXCLUDES(map_mu_);

  /// Answers every phi in one pass; *out is reused.
  Status QueryMany(std::string_view name, std::span<const double> phis,
                   std::vector<Value>* out) const MRLQUANT_EXCLUDES(map_mu_);

  /// Serializes tenant `name` into *blob (the per-tenant checkpoint format
  /// of docs/checkpoint_format.md) and, when a checkpoint path is
  /// configured, persists the whole registry durably before returning.
  Status Snapshot(std::string_view name, std::vector<std::uint8_t>* blob)
      MRLQUANT_EXCLUDES(map_mu_);

  Status Delete(std::string_view name) MRLQUANT_EXCLUDES(map_mu_);

  /// Per-tenant statistics; `present == false` when unknown.
  TenantStats Stats(std::string_view name) const MRLQUANT_EXCLUDES(map_mu_);

  RegistryStats GlobalStats() const MRLQUANT_EXCLUDES(map_mu_);

  /// Atomically (write-temp + rename) persists every tenant to the
  /// configured checkpoint path. No-op returning OK when persistence is
  /// disabled.
  Status CheckpointNow() MRLQUANT_EXCLUDES(map_mu_);

  /// Loads the checkpoint file if it exists (OK and empty registry when it
  /// does not). Fails without touching the registry on a corrupt file.
  Status RecoverFromDisk() MRLQUANT_EXCLUDES(map_mu_);

  std::size_t size() const MRLQUANT_EXCLUDES(map_mu_);

 private:
  /// Tenants hold their backend through the full QuantileEstimator
  /// lifecycle interface — ingestion, queries, Reset-based recycling and
  /// Serialize/Restore checkpointing are all virtual calls, so adding a
  /// backend touches MakeSketch and nothing else here. (Sharded ingestion
  /// round-robin moved into ShardedQuantileSketch itself in PR 6.)
  struct Tenant {
    Tenant(TenantConfig c, std::unique_ptr<QuantileEstimator> s)
        : config(c), sketch(std::move(s)) {}
    TenantConfig config;  ///< immutable after construction; read lock-free
    mutable SharedMutex mu;
    std::unique_ptr<QuantileEstimator> sketch MRLQUANT_GUARDED_BY(mu);
    std::atomic<std::uint64_t> last_used{0};
  };

  /// Transparent string hashing so the hot path looks tenants up by
  /// string_view without materializing a std::string.
  struct StringHash {
    using is_transparent = void;
    std::size_t operator()(std::string_view s) const {
      return std::hash<std::string_view>{}(s);
    }
  };
  using TenantMap = std::unordered_map<std::string, std::shared_ptr<Tenant>,
                                       StringHash, std::equal_to<>>;

  struct FreeEntry {
    TenantConfig config;
    std::unique_ptr<QuantileEstimator> sketch;
  };

  static Result<std::unique_ptr<QuantileEstimator>> MakeSketch(
      const TenantConfig& config);

  /// Builds a tenant sketch for `config`, preferring a structurally
  /// matching free-pool entry (Reset(config.seed) makes it byte-identical
  /// to a fresh build). Caller holds map_mu_ exclusively.
  Result<std::unique_ptr<QuantileEstimator>> ObtainSketch(
      const TenantConfig& config) MRLQUANT_REQUIRES(map_mu_);

  /// Returns a sketch to the free pool. Caller holds map_mu_ exclusively
  /// and the last reference to the tenant; takes Tenant::mu (map_mu_ → mu,
  /// uncontended by the last-reference precondition) to move the sketch
  /// out under its capability.
  void RecycleLocked(std::shared_ptr<Tenant> tenant)
      MRLQUANT_REQUIRES(map_mu_);

  /// Evicts the least-recently-used tenant. Caller holds map_mu_
  /// exclusively and the map is non-empty.
  void EvictOneLocked() MRLQUANT_REQUIRES(map_mu_);

  /// Shared-locks the map and returns the named tenant (bumping its LRU
  /// stamp), or null.
  std::shared_ptr<Tenant> FindTenant(std::string_view name) const
      MRLQUANT_EXCLUDES(map_mu_);

  /// Serializes one tenant's sketch — uniformly a u32 length followed by
  /// the backend's Serialize() blob — under its (at least shared) lock.
  static void EncodeTenantSketch(const Tenant& tenant, BinaryWriter* writer)
      MRLQUANT_REQUIRES_SHARED(tenant.mu);
  static Result<std::unique_ptr<QuantileEstimator>> DecodeTenantSketch(
      const TenantConfig& config, BinaryReader* reader);

  RegistryOptions options_;
  mutable SharedMutex map_mu_;
  TenantMap tenants_ MRLQUANT_GUARDED_BY(map_mu_);
  std::vector<FreeEntry> free_pool_ MRLQUANT_GUARDED_BY(map_mu_);
  mutable std::atomic<std::uint64_t> use_clock_{0};
  std::atomic<std::uint64_t> evictions_{0};
  std::atomic<std::uint64_t> recycled_creates_{0};
  std::atomic<std::uint64_t> checkpoints_{0};
};

}  // namespace server
}  // namespace mrl

#endif  // MRLQUANT_SERVER_REGISTRY_H_
