#ifndef MRLQUANT_SERVER_REGISTRY_H_
#define MRLQUANT_SERVER_REGISTRY_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "core/estimator.h"
#include "server/protocol.h"
#include "util/serde.h"
#include "util/status.h"
#include "util/thread_annotations.h"
#include "util/types.h"

namespace mrl {
namespace server {

struct RegistryOptions {
  /// Hard cap on live tenants across all partitions; creating past it
  /// evicts the globally least recently used tenant (its sketch is
  /// recycled through the evicting partition's free pool).
  std::size_t max_tenants = 64;
  /// Checkpoint file for crash recovery (docs/checkpoint_format.md,
  /// "Registry checkpoint"). Empty disables persistence.
  std::string checkpoint_path;
  /// Deleted/evicted sketches kept around for allocation-free recycling of
  /// tenant slots (QuantileEstimator::Reset(seed)), per partition.
  std::size_t max_free_pool = 8;
  /// Backends this server will instantiate; empty means all. CREATE_SKETCH
  /// for a kind outside the list fails with a descriptive error (the
  /// mrlquantd --backends flag feeds this).
  std::vector<SketchKind> allowed_kinds;
  /// Number of directory partitions, in [1, 256]. Tenants are assigned to
  /// partitions by a stable hash of their name (PartitionOf); each
  /// partition has its own directory lock and free pool, so operations on
  /// tenants in different partitions never contend on a shared mutex. The
  /// sharded event-loop server sets this to its shard count and routes
  /// each connection to the shard owning its tenant's partition, making
  /// the steady-state ingest path shared-nothing.
  std::size_t num_partitions = 1;
};

struct TenantStats {
  bool present = false;
  TenantConfig config;
  std::uint64_t count = 0;
  std::uint64_t memory_elements = 0;
};

struct RegistryStats {
  std::uint64_t num_tenants = 0;
  std::uint64_t total_count = 0;
  std::uint64_t evictions = 0;         ///< LRU evictions since start
  std::uint64_t recycled_creates = 0;  ///< creates served from a free pool
  std::uint64_t checkpoints = 0;       ///< successful CheckpointNow calls
};

/// Multi-tenant sketch registry, partitioned for shared-nothing serving:
/// tenant names hash to one of `num_partitions` directory partitions
/// (PartitionOf), each with its own shared mutex, tenant map, and free
/// pool. Reads of a partition's directory are concurrent;
/// create/delete/evict are exclusive per partition. Each tenant
/// additionally holds its own shared mutex so ingestion into tenant A
/// never blocks queries on tenant B. Within a tenant, AddBatch takes the
/// exclusive lock and queries take the shared lock — exactly the
/// single-writer / concurrent-const-reader contract the sketches document.
///
/// Lock order (statically annotated, checked by -Wthread-safety on Clang):
///
///   cross_mu_  →  Partition::mu  →  Tenant::mu
///
/// * `Partition::mu` guards one partition's directory and free pool.
///   Steady-state per-tenant operations (AddBatch/Query/Stats/...) touch
///   exactly one partition lock — shared, only long enough to copy out a
///   shared_ptr<Tenant> handle — and then the tenant's own lock. When the
///   server routes each connection to the shard owning its tenant's
///   partition, that partition lock is only ever taken by one thread and
///   is therefore uncontended: the ingest path crosses no shared lock.
/// * `cross_mu_` survives only for cross-partition operations that must
///   not interleave with each other: CheckpointNow (file write),
///   RecoverFromDisk (directory swap), and global LRU eviction
///   (EvictGlobalLru). Per-partition operations never touch it.
/// * Two partition locks are never held at once: the global LRU scan
///   visits partitions one at a time, and eviction re-locks only the
///   victim's partition.
///
/// The one deliberate nesting below a partition lock is recycling
/// (RecycleLocked), which takes Tenant::mu while holding the partition
/// lock exclusively — in the documented direction, and only when the
/// registry holds the last reference, so the lock is uncontended.
///
/// An operation that races a Delete of the same tenant may still apply to
/// the outgoing instance (it holds a shared_ptr); it never crashes and
/// never touches a recycled sketch — recycling only happens once the
/// registry holds the last reference. Under concurrent creates the
/// max_tenants cap may be overshot transiently; Create self-heals by
/// evicting until the registry is back under the cap before returning.
class SketchRegistry {
 public:
  explicit SketchRegistry(RegistryOptions options);

  SketchRegistry(const SketchRegistry&) = delete;
  SketchRegistry& operator=(const SketchRegistry&) = delete;

  /// Creates tenant `name`. FailedPrecondition when it already exists,
  /// InvalidArgument on a bad name or config.
  Status Create(std::string_view name, const TenantConfig& config);

  /// Ingests a batch into tenant `name` (round-robin across shards for
  /// kSharded tenants) and returns the tenant's element count after the
  /// batch. Steady state performs no heap allocation.
  MRLQUANT_HOT Result<std::uint64_t> AddBatch(std::string_view name,
                                              std::span<const Value> values);

  MRLQUANT_HOT Result<Value> Query(std::string_view name, double phi) const;

  /// Answers every phi in one pass; *out is reused.
  Status QueryMany(std::string_view name, std::span<const double> phis,
                   std::vector<Value>* out) const;

  /// Serializes tenant `name` into *blob (the per-tenant checkpoint format
  /// of docs/checkpoint_format.md) and, when a checkpoint path is
  /// configured, persists the whole registry durably before returning.
  Status Snapshot(std::string_view name, std::vector<std::uint8_t>* blob);

  Status Delete(std::string_view name);

  /// Exports tenant `name` as a serialized Section 6 partial summary
  /// (core/partial.h) without disturbing the live sketch — the
  /// FETCH_SUMMARY op a router fans out before merging. FailedPrecondition
  /// (naming the backend) when the tenant's backend cannot export partials.
  Status FetchPartial(std::string_view name, std::vector<std::uint8_t>* blob);

  /// Create-or-replace tenant `name` from a checkpoint blob — the RESTORE
  /// op a router uses for replica resync and checkpoint shipping. Any
  /// existing tenant is deleted first; on a failed restore the half-made
  /// tenant is removed again, so the registry never serves a partially
  /// restored sketch.
  Status Install(std::string_view name, const TenantConfig& config,
                 std::span<const std::uint8_t> blob);

  /// Per-tenant statistics; `present == false` when unknown.
  TenantStats Stats(std::string_view name) const;

  RegistryStats GlobalStats() const;

  /// Atomically (write-temp + rename) persists every tenant to the
  /// configured checkpoint path. No-op returning OK when persistence is
  /// disabled.
  Status CheckpointNow() MRLQUANT_EXCLUDES(cross_mu_);

  /// Loads the checkpoint file if it exists (OK and empty registry when it
  /// does not). Fails without touching the registry on a corrupt file.
  Status RecoverFromDisk() MRLQUANT_EXCLUDES(cross_mu_);

  std::size_t size() const;

  /// Stable hash of a tenant name (FNV-1a); PartitionOf reduces it modulo
  /// num_partitions. The server uses the same function to route a
  /// connection to the shard owning its tenant, so "partition i" and
  /// "shard i" agree by construction.
  static std::uint64_t NameHash(std::string_view name);
  std::size_t PartitionOf(std::string_view name) const {
    return static_cast<std::size_t>(NameHash(name)) % partitions_.size();
  }
  std::size_t num_partitions() const { return partitions_.size(); }

 private:
  /// Tenants hold their backend through the full QuantileEstimator
  /// lifecycle interface — ingestion, queries, Reset-based recycling and
  /// Serialize/Restore checkpointing are all virtual calls, so adding a
  /// backend touches MakeSketch and nothing else here.
  struct Tenant {
    Tenant(TenantConfig c, std::unique_ptr<QuantileEstimator> s)
        : config(c), sketch(std::move(s)) {}
    TenantConfig config;  ///< immutable after construction; read lock-free
    mutable SharedMutex mu;
    std::unique_ptr<QuantileEstimator> sketch MRLQUANT_GUARDED_BY(mu);
    std::atomic<std::uint64_t> last_used{0};
  };

  /// Transparent string hashing so the hot path looks tenants up by
  /// string_view without materializing a std::string.
  struct StringHash {
    using is_transparent = void;
    std::size_t operator()(std::string_view s) const {
      return std::hash<std::string_view>{}(s);
    }
  };
  using TenantMap = std::unordered_map<std::string, std::shared_ptr<Tenant>,
                                       StringHash, std::equal_to<>>;

  struct FreeEntry {
    TenantConfig config;
    std::unique_ptr<QuantileEstimator> sketch;
  };

  /// One directory partition: its own lock, tenant map, and free pool.
  /// Heap-allocated so the SharedMutex never moves.
  struct Partition {
    mutable SharedMutex mu;
    TenantMap tenants MRLQUANT_GUARDED_BY(mu);
    std::vector<FreeEntry> free_pool MRLQUANT_GUARDED_BY(mu);
  };

  static Result<std::unique_ptr<QuantileEstimator>> MakeSketch(
      const TenantConfig& config);

  Partition& PartitionFor(std::string_view name) const {
    return *partitions_[PartitionOf(name)];
  }

  /// Builds a tenant sketch for `config`, preferring a structurally
  /// matching free-pool entry of `p` (Reset(config.seed) makes it
  /// byte-identical to a fresh build). Caller holds p.mu exclusively.
  Result<std::unique_ptr<QuantileEstimator>> ObtainSketch(
      Partition& p, const TenantConfig& config) MRLQUANT_REQUIRES(p.mu);

  /// Returns a sketch to `p`'s free pool. Caller holds p.mu exclusively
  /// and the last reference to the tenant; takes Tenant::mu (Partition::mu
  /// → Tenant::mu, uncontended by the last-reference precondition) to move
  /// the sketch out under its capability.
  void RecycleLocked(Partition& p, std::shared_ptr<Tenant> tenant)
      MRLQUANT_REQUIRES(p.mu);

  /// Evicts the globally least-recently-used tenant, scanning partitions
  /// one at a time (never holding two partition locks). Returns false when
  /// every partition is empty. Caller holds cross_mu_ (eviction
  /// accounting: concurrent evictors would pick the same victim).
  bool EvictGlobalLru() MRLQUANT_REQUIRES(cross_mu_);

  /// Shared-locks the owning partition and returns the named tenant
  /// (bumping its LRU stamp), or null.
  std::shared_ptr<Tenant> FindTenant(std::string_view name) const;

  /// Serializes one tenant's sketch — uniformly a u32 length followed by
  /// the backend's Serialize() blob — under its (at least shared) lock.
  static void EncodeTenantSketch(const Tenant& tenant, BinaryWriter* writer)
      MRLQUANT_REQUIRES_SHARED(tenant.mu);
  static Result<std::unique_ptr<QuantileEstimator>> DecodeTenantSketch(
      const TenantConfig& config, BinaryReader* reader);

  RegistryOptions options_;
  /// Fixed at construction; the vector itself is immutable after that, so
  /// PartitionFor needs no lock.
  std::vector<std::unique_ptr<Partition>> partitions_;
  /// Cross-partition operations only (checkpoint, recover, global LRU
  /// eviction); see the lock-order comment above.
  mutable SharedMutex cross_mu_;
  /// Live tenants across all partitions — eviction accounting without a
  /// global directory lock.
  std::atomic<std::uint64_t> live_tenants_{0};
  mutable std::atomic<std::uint64_t> use_clock_{0};
  std::atomic<std::uint64_t> evictions_{0};
  std::atomic<std::uint64_t> recycled_creates_{0};
  std::atomic<std::uint64_t> checkpoints_{0};
};

}  // namespace server
}  // namespace mrl

#endif  // MRLQUANT_SERVER_REGISTRY_H_
