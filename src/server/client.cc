#include "server/client.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

namespace mrl {
namespace server {

namespace {

Status StatusFromErrno(const char* what) {
  return Status::Internal(std::string(what) + ": " + std::strerror(errno));
}

enum class IoOutcome { kOk, kEof, kTimeout, kError };

IoOutcome WriteFull(int fd, const std::uint8_t* buf, std::size_t n) {
  std::size_t sent = 0;
  while (sent < n) {
    const ssize_t w = ::send(fd, buf + sent, n - sent, MSG_NOSIGNAL);
    if (w < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) return IoOutcome::kTimeout;
      return IoOutcome::kError;
    }
    sent += static_cast<std::size_t>(w);
  }
  return IoOutcome::kOk;
}

IoOutcome ReadFull(int fd, std::uint8_t* buf, std::size_t n) {
  std::size_t got = 0;
  while (got < n) {
    const ssize_t r = ::recv(fd, buf + got, n - got, 0);
    if (r == 0) return IoOutcome::kEof;
    if (r < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) return IoOutcome::kTimeout;
      return IoOutcome::kError;
    }
    got += static_cast<std::size_t>(r);
  }
  return IoOutcome::kOk;
}

/// connect(2) with a deadline: flips the socket nonblocking, polls for
/// writability, then reads SO_ERROR for the real outcome before restoring
/// blocking mode. `timeout_ms < 0` is a plain blocking connect.
Status ConnectWithDeadline(int fd, const sockaddr* addr, socklen_t addrlen,
                           int timeout_ms) {
  if (timeout_ms < 0) {
    if (::connect(fd, addr, addrlen) != 0) return StatusFromErrno("connect");
    return Status::OK();
  }
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0) return StatusFromErrno("fcntl(F_GETFL)");
  if (::fcntl(fd, F_SETFL, flags | O_NONBLOCK) != 0) {
    return StatusFromErrno("fcntl(F_SETFL)");
  }
  Status status = Status::OK();
  if (::connect(fd, addr, addrlen) != 0) {
    if (errno == EINPROGRESS || errno == EAGAIN) {
      pollfd pfd{fd, POLLOUT, 0};
      int rc;
      do {
        rc = ::poll(&pfd, 1, timeout_ms);
      } while (rc < 0 && errno == EINTR);
      if (rc == 0) {
        status = Status::Internal("connect timed out");
      } else if (rc < 0) {
        status = StatusFromErrno("poll");
      } else {
        int so_error = 0;
        socklen_t len = sizeof(so_error);
        if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &so_error, &len) != 0) {
          status = StatusFromErrno("getsockopt(SO_ERROR)");
        } else if (so_error != 0) {
          status = Status::Internal(std::string("connect: ") +
                                    std::strerror(so_error));
        }
      }
    } else {
      status = StatusFromErrno("connect");
    }
  }
  if (status.ok() && ::fcntl(fd, F_SETFL, flags) != 0) {
    status = StatusFromErrno("fcntl(F_SETFL)");
  }
  return status;
}

}  // namespace

Result<Client> Client::ConnectUnix(const std::string& path, int timeout_ms) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.empty() || path.size() >= sizeof(addr.sun_path)) {
    return Status::InvalidArgument("bad unix socket path");
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return StatusFromErrno("socket(AF_UNIX)");
  const Status status = ConnectWithDeadline(
      fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr), timeout_ms);
  if (!status.ok()) {
    ::close(fd);
    return status;
  }
  return Client(fd);
}

Result<Client> Client::ConnectTcp(const std::string& host, std::uint16_t port,
                                  int timeout_ms) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("host must be a dotted-quad IPv4 address");
  }
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return StatusFromErrno("socket(AF_INET)");
  const Status status = ConnectWithDeadline(
      fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr), timeout_ms);
  if (!status.ok()) {
    ::close(fd);
    return status;
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return Client(fd);
}

Status Client::SetIoTimeout(int timeout_ms) {
  if (fd_ < 0) return Status::FailedPrecondition("client not connected");
  timeval tv{};
  if (timeout_ms > 0) {
    tv.tv_sec = timeout_ms / 1000;
    tv.tv_usec = static_cast<long>(timeout_ms % 1000) * 1000;
  }
  if (::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv)) != 0) {
    return StatusFromErrno("setsockopt(SO_RCVTIMEO)");
  }
  if (::setsockopt(fd_, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv)) != 0) {
    return StatusFromErrno("setsockopt(SO_SNDTIMEO)");
  }
  return Status::OK();
}

Client::Client(Client&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)),
      request_(std::move(other.request_)),
      response_(std::move(other.response_)),
      expected_(std::move(other.expected_)) {}

Client& Client::operator=(Client&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = std::exchange(other.fd_, -1);
    request_ = std::move(other.request_);
    response_ = std::move(other.response_);
    expected_ = std::move(other.expected_);
  }
  return *this;
}

Client::~Client() { Close(); }

void Client::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Status Client::CheckNoPipeline() const {
  if (expected_.empty()) return Status::OK();
  return Status::FailedPrecondition(
      "pipeline requests queued; call PipelineFlush first");
}

Result<ResponseView> Client::RoundTrip(MsgType sent) {
  if (fd_ < 0) return Status::FailedPrecondition("client not connected");
  const IoOutcome wrote = WriteFull(fd_, request_.data(), request_.size());
  if (wrote != IoOutcome::kOk) {
    const Status status = wrote == IoOutcome::kTimeout
                              ? Status::Internal("send timed out")
                              : StatusFromErrno("send");
    Close();
    return status;
  }
  return ReadResponse(sent);
}

Result<ResponseView> Client::ReadResponse(MsgType sent) {
  std::uint8_t prefix[4];
  IoOutcome got = ReadFull(fd_, prefix, sizeof(prefix));
  if (got != IoOutcome::kOk) {
    Close();
    if (got == IoOutcome::kTimeout) {
      return Status::Internal("read timed out awaiting response");
    }
    return Status::Internal("connection closed while awaiting response");
  }
  const std::uint32_t body_len = static_cast<std::uint32_t>(prefix[0]) |
                                 (static_cast<std::uint32_t>(prefix[1]) << 8) |
                                 (static_cast<std::uint32_t>(prefix[2]) << 16) |
                                 (static_cast<std::uint32_t>(prefix[3]) << 24);
  if (body_len < kFrameHeaderSize - 4 ||
      body_len > kMaxPayload + kFrameHeaderSize - 4) {
    Close();
    return Status::Internal("response frame length out of range");
  }
  response_.resize(body_len);
  got = ReadFull(fd_, response_.data(), body_len);
  if (got != IoOutcome::kOk) {
    Close();
    if (got == IoOutcome::kTimeout) {
      return Status::Internal("read timed out mid-response");
    }
    return Status::Internal("connection closed mid-response");
  }
  Result<FrameView> frame = DecodeFrameBody(response_.data(), body_len);
  if (!frame.ok()) {
    Close();
    return frame.status();
  }
  if (frame.value().type != MsgType::kResponse) {
    Close();
    return Status::Internal("server sent a non-response frame");
  }
  Result<ResponseView> view =
      DecodeResponse(frame.value().payload, frame.value().payload_len);
  if (!view.ok()) {
    Close();
    return view.status();
  }
  // kResponse as echoed request type marks a frame the server could not
  // attribute to a request (e.g. CRC mismatch); pass it through.
  if (view.value().request_type != sent &&
      view.value().request_type != MsgType::kResponse) {
    Close();
    return Status::Internal("response does not match request type");
  }
  return view;
}

void Client::PipelineCreateSketch(std::string_view name,
                                  const TenantConfig& config) {
  if (expected_.empty()) request_.clear();
  EncodeCreateSketch(name, config, &request_);
  expected_.push_back(MsgType::kCreateSketch);
}

void Client::PipelineAddBatch(std::string_view name,
                              std::span<const Value> values) {
  if (expected_.empty()) request_.clear();
  EncodeAddBatch(name, values, &request_);
  expected_.push_back(MsgType::kAddBatch);
}

void Client::PipelineQuery(std::string_view name, double phi) {
  if (expected_.empty()) request_.clear();
  EncodeQuery(name, phi, &request_);
  expected_.push_back(MsgType::kQuery);
}

Status Client::PipelineFlush(std::vector<PipelineReply>* replies) {
  if (fd_ < 0) {
    expected_.clear();
    return Status::FailedPrecondition("client not connected");
  }
  if (expected_.empty()) return Status::OK();
  const IoOutcome wrote = WriteFull(fd_, request_.data(), request_.size());
  if (wrote != IoOutcome::kOk) {
    const Status status = wrote == IoOutcome::kTimeout
                              ? Status::Internal("send timed out")
                              : StatusFromErrno("send");
    expected_.clear();
    Close();
    return status;
  }
  // Responses arrive on this connection in request order (the pipelining
  // guarantee of docs/wire_protocol.md); read exactly one per queued
  // request. response_ is reused per frame, so each reply is materialized
  // before the next read.
  Status result = Status::OK();
  for (std::size_t i = 0; i < expected_.size(); ++i) {
    Result<ResponseView> response = ReadResponse(expected_[i]);
    if (!response.ok()) {
      // Transport/framing failure: the connection is closed; the
      // remaining responses are unrecoverable.
      result = response.status();
      break;
    }
    if (replies == nullptr) continue;
    PipelineReply reply;
    reply.request_type = expected_[i];
    reply.status = response.value().ToStatus();
    if (reply.status.ok()) {
      if (expected_[i] == MsgType::kAddBatch) {
        Result<std::uint64_t> count = DecodeAddBatchOk(response.value());
        if (count.ok()) {
          reply.count = count.value();
        } else {
          reply.status = count.status();
        }
      } else if (expected_[i] == MsgType::kQuery) {
        Result<double> value = DecodeQueryOk(response.value());
        if (value.ok()) {
          reply.value = value.value();
        } else {
          reply.status = value.status();
        }
      }
    }
    replies->push_back(std::move(reply));
  }
  expected_.clear();
  return result;
}

Status Client::CreateSketch(std::string_view name,
                            const TenantConfig& config) {
  if (Status busy = CheckNoPipeline(); !busy.ok()) return busy;
  request_.clear();
  EncodeCreateSketch(name, config, &request_);
  Result<ResponseView> response = RoundTrip(MsgType::kCreateSketch);
  if (!response.ok()) return response.status();
  return response.value().ToStatus();
}

Result<std::uint64_t> Client::AddBatch(std::string_view name,
                                       std::span<const Value> values) {
  if (Status busy = CheckNoPipeline(); !busy.ok()) return busy;
  request_.clear();
  EncodeAddBatch(name, values, &request_);
  Result<ResponseView> response = RoundTrip(MsgType::kAddBatch);
  if (!response.ok()) return response.status();
  if (!response.value().ok()) return response.value().ToStatus();
  return DecodeAddBatchOk(response.value());
}

Result<double> Client::Query(std::string_view name, double phi) {
  if (Status busy = CheckNoPipeline(); !busy.ok()) return busy;
  request_.clear();
  EncodeQuery(name, phi, &request_);
  Result<ResponseView> response = RoundTrip(MsgType::kQuery);
  if (!response.ok()) return response.status();
  if (!response.value().ok()) return response.value().ToStatus();
  return DecodeQueryOk(response.value());
}

Status Client::QueryMulti(std::string_view name, std::span<const double> phis,
                          std::vector<Value>* out) {
  if (Status busy = CheckNoPipeline(); !busy.ok()) return busy;
  request_.clear();
  EncodeQueryMulti(name, phis, &request_);
  Result<ResponseView> response = RoundTrip(MsgType::kQueryMulti);
  if (!response.ok()) return response.status();
  if (!response.value().ok()) return response.value().ToStatus();
  return DecodeQueryMultiOk(response.value(), out);
}

Status Client::Snapshot(std::string_view name,
                        std::vector<std::uint8_t>* blob) {
  if (Status busy = CheckNoPipeline(); !busy.ok()) return busy;
  request_.clear();
  EncodeNameRequest(MsgType::kSnapshot, name, &request_);
  Result<ResponseView> response = RoundTrip(MsgType::kSnapshot);
  if (!response.ok()) return response.status();
  if (!response.value().ok()) return response.value().ToStatus();
  return DecodeSnapshotOk(response.value(), blob);
}

Status Client::Delete(std::string_view name) {
  if (Status busy = CheckNoPipeline(); !busy.ok()) return busy;
  request_.clear();
  EncodeNameRequest(MsgType::kDelete, name, &request_);
  Result<ResponseView> response = RoundTrip(MsgType::kDelete);
  if (!response.ok()) return response.status();
  return response.value().ToStatus();
}

Result<StatsReply> Client::Stats(std::string_view name) {
  if (Status busy = CheckNoPipeline(); !busy.ok()) return busy;
  request_.clear();
  EncodeNameRequest(MsgType::kStats, name, &request_);
  Result<ResponseView> response = RoundTrip(MsgType::kStats);
  if (!response.ok()) return response.status();
  if (!response.value().ok()) return response.value().ToStatus();
  return DecodeStatsOk(response.value());
}

Status Client::Ping() {
  if (Status busy = CheckNoPipeline(); !busy.ok()) return busy;
  request_.clear();
  EncodePing(&request_);
  Result<ResponseView> response = RoundTrip(MsgType::kPing);
  if (!response.ok()) return response.status();
  return response.value().ToStatus();
}

Status Client::FetchSummary(std::string_view name,
                            std::vector<std::uint8_t>* blob) {
  if (Status busy = CheckNoPipeline(); !busy.ok()) return busy;
  request_.clear();
  EncodeNameRequest(MsgType::kFetchSummary, name, &request_);
  Result<ResponseView> response = RoundTrip(MsgType::kFetchSummary);
  if (!response.ok()) return response.status();
  if (!response.value().ok()) return response.value().ToStatus();
  return DecodeFetchSummaryOk(response.value(), blob);
}

Status Client::RestoreTenant(std::string_view name, const TenantConfig& config,
                             std::span<const std::uint8_t> blob) {
  if (Status busy = CheckNoPipeline(); !busy.ok()) return busy;
  request_.clear();
  EncodeRestore(name, config, blob, &request_);
  Result<ResponseView> response = RoundTrip(MsgType::kRestore);
  if (!response.ok()) return response.status();
  return response.value().ToStatus();
}

}  // namespace server
}  // namespace mrl
