#include "server/client.h"

#include <arpa/inet.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

namespace mrl {
namespace server {

namespace {

Status StatusFromErrno(const char* what) {
  return Status::Internal(std::string(what) + ": " + std::strerror(errno));
}

bool WriteFull(int fd, const std::uint8_t* buf, std::size_t n) {
  std::size_t sent = 0;
  while (sent < n) {
    const ssize_t w = ::send(fd, buf + sent, n - sent, MSG_NOSIGNAL);
    if (w < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    sent += static_cast<std::size_t>(w);
  }
  return true;
}

bool ReadFull(int fd, std::uint8_t* buf, std::size_t n) {
  std::size_t got = 0;
  while (got < n) {
    const ssize_t r = ::recv(fd, buf + got, n - got, 0);
    if (r == 0) return false;
    if (r < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    got += static_cast<std::size_t>(r);
  }
  return true;
}

}  // namespace

Result<Client> Client::ConnectUnix(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.empty() || path.size() >= sizeof(addr.sun_path)) {
    return Status::InvalidArgument("bad unix socket path");
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return StatusFromErrno("socket(AF_UNIX)");
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    const Status status = StatusFromErrno("connect");
    ::close(fd);
    return status;
  }
  return Client(fd);
}

Result<Client> Client::ConnectTcp(const std::string& host,
                                  std::uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("host must be a dotted-quad IPv4 address");
  }
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return StatusFromErrno("socket(AF_INET)");
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    const Status status = StatusFromErrno("connect");
    ::close(fd);
    return status;
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return Client(fd);
}

Client::Client(Client&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)),
      request_(std::move(other.request_)),
      response_(std::move(other.response_)),
      expected_(std::move(other.expected_)) {}

Client& Client::operator=(Client&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = std::exchange(other.fd_, -1);
    request_ = std::move(other.request_);
    response_ = std::move(other.response_);
    expected_ = std::move(other.expected_);
  }
  return *this;
}

Client::~Client() { Close(); }

void Client::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Status Client::CheckNoPipeline() const {
  if (expected_.empty()) return Status::OK();
  return Status::FailedPrecondition(
      "pipeline requests queued; call PipelineFlush first");
}

Result<ResponseView> Client::RoundTrip(MsgType sent) {
  if (fd_ < 0) return Status::FailedPrecondition("client not connected");
  if (!WriteFull(fd_, request_.data(), request_.size())) {
    Close();
    return StatusFromErrno("send");
  }
  return ReadResponse(sent);
}

Result<ResponseView> Client::ReadResponse(MsgType sent) {
  std::uint8_t prefix[4];
  if (!ReadFull(fd_, prefix, sizeof(prefix))) {
    Close();
    return Status::Internal("connection closed while awaiting response");
  }
  const std::uint32_t body_len = static_cast<std::uint32_t>(prefix[0]) |
                                 (static_cast<std::uint32_t>(prefix[1]) << 8) |
                                 (static_cast<std::uint32_t>(prefix[2]) << 16) |
                                 (static_cast<std::uint32_t>(prefix[3]) << 24);
  if (body_len < kFrameHeaderSize - 4 ||
      body_len > kMaxPayload + kFrameHeaderSize - 4) {
    Close();
    return Status::Internal("response frame length out of range");
  }
  response_.resize(body_len);
  if (!ReadFull(fd_, response_.data(), body_len)) {
    Close();
    return Status::Internal("connection closed mid-response");
  }
  Result<FrameView> frame = DecodeFrameBody(response_.data(), body_len);
  if (!frame.ok()) {
    Close();
    return frame.status();
  }
  if (frame.value().type != MsgType::kResponse) {
    Close();
    return Status::Internal("server sent a non-response frame");
  }
  Result<ResponseView> view =
      DecodeResponse(frame.value().payload, frame.value().payload_len);
  if (!view.ok()) {
    Close();
    return view.status();
  }
  // kResponse as echoed request type marks a frame the server could not
  // attribute to a request (e.g. CRC mismatch); pass it through.
  if (view.value().request_type != sent &&
      view.value().request_type != MsgType::kResponse) {
    Close();
    return Status::Internal("response does not match request type");
  }
  return view;
}

void Client::PipelineCreateSketch(std::string_view name,
                                  const TenantConfig& config) {
  if (expected_.empty()) request_.clear();
  EncodeCreateSketch(name, config, &request_);
  expected_.push_back(MsgType::kCreateSketch);
}

void Client::PipelineAddBatch(std::string_view name,
                              std::span<const Value> values) {
  if (expected_.empty()) request_.clear();
  EncodeAddBatch(name, values, &request_);
  expected_.push_back(MsgType::kAddBatch);
}

void Client::PipelineQuery(std::string_view name, double phi) {
  if (expected_.empty()) request_.clear();
  EncodeQuery(name, phi, &request_);
  expected_.push_back(MsgType::kQuery);
}

Status Client::PipelineFlush(std::vector<PipelineReply>* replies) {
  if (fd_ < 0) {
    expected_.clear();
    return Status::FailedPrecondition("client not connected");
  }
  if (expected_.empty()) return Status::OK();
  if (!WriteFull(fd_, request_.data(), request_.size())) {
    expected_.clear();
    Close();
    return StatusFromErrno("send");
  }
  // Responses arrive on this connection in request order (the pipelining
  // guarantee of docs/wire_protocol.md); read exactly one per queued
  // request. response_ is reused per frame, so each reply is materialized
  // before the next read.
  Status result = Status::OK();
  for (std::size_t i = 0; i < expected_.size(); ++i) {
    Result<ResponseView> response = ReadResponse(expected_[i]);
    if (!response.ok()) {
      // Transport/framing failure: the connection is closed; the
      // remaining responses are unrecoverable.
      result = response.status();
      break;
    }
    if (replies == nullptr) continue;
    PipelineReply reply;
    reply.request_type = expected_[i];
    reply.status = response.value().ToStatus();
    if (reply.status.ok()) {
      if (expected_[i] == MsgType::kAddBatch) {
        Result<std::uint64_t> count = DecodeAddBatchOk(response.value());
        if (count.ok()) {
          reply.count = count.value();
        } else {
          reply.status = count.status();
        }
      } else if (expected_[i] == MsgType::kQuery) {
        Result<double> value = DecodeQueryOk(response.value());
        if (value.ok()) {
          reply.value = value.value();
        } else {
          reply.status = value.status();
        }
      }
    }
    replies->push_back(std::move(reply));
  }
  expected_.clear();
  return result;
}

Status Client::CreateSketch(std::string_view name,
                            const TenantConfig& config) {
  if (Status busy = CheckNoPipeline(); !busy.ok()) return busy;
  request_.clear();
  EncodeCreateSketch(name, config, &request_);
  Result<ResponseView> response = RoundTrip(MsgType::kCreateSketch);
  if (!response.ok()) return response.status();
  return response.value().ToStatus();
}

Result<std::uint64_t> Client::AddBatch(std::string_view name,
                                       std::span<const Value> values) {
  if (Status busy = CheckNoPipeline(); !busy.ok()) return busy;
  request_.clear();
  EncodeAddBatch(name, values, &request_);
  Result<ResponseView> response = RoundTrip(MsgType::kAddBatch);
  if (!response.ok()) return response.status();
  if (!response.value().ok()) return response.value().ToStatus();
  return DecodeAddBatchOk(response.value());
}

Result<double> Client::Query(std::string_view name, double phi) {
  if (Status busy = CheckNoPipeline(); !busy.ok()) return busy;
  request_.clear();
  EncodeQuery(name, phi, &request_);
  Result<ResponseView> response = RoundTrip(MsgType::kQuery);
  if (!response.ok()) return response.status();
  if (!response.value().ok()) return response.value().ToStatus();
  return DecodeQueryOk(response.value());
}

Status Client::QueryMulti(std::string_view name, std::span<const double> phis,
                          std::vector<Value>* out) {
  if (Status busy = CheckNoPipeline(); !busy.ok()) return busy;
  request_.clear();
  EncodeQueryMulti(name, phis, &request_);
  Result<ResponseView> response = RoundTrip(MsgType::kQueryMulti);
  if (!response.ok()) return response.status();
  if (!response.value().ok()) return response.value().ToStatus();
  return DecodeQueryMultiOk(response.value(), out);
}

Status Client::Snapshot(std::string_view name,
                        std::vector<std::uint8_t>* blob) {
  if (Status busy = CheckNoPipeline(); !busy.ok()) return busy;
  request_.clear();
  EncodeNameRequest(MsgType::kSnapshot, name, &request_);
  Result<ResponseView> response = RoundTrip(MsgType::kSnapshot);
  if (!response.ok()) return response.status();
  if (!response.value().ok()) return response.value().ToStatus();
  return DecodeSnapshotOk(response.value(), blob);
}

Status Client::Delete(std::string_view name) {
  if (Status busy = CheckNoPipeline(); !busy.ok()) return busy;
  request_.clear();
  EncodeNameRequest(MsgType::kDelete, name, &request_);
  Result<ResponseView> response = RoundTrip(MsgType::kDelete);
  if (!response.ok()) return response.status();
  return response.value().ToStatus();
}

Result<StatsReply> Client::Stats(std::string_view name) {
  if (Status busy = CheckNoPipeline(); !busy.ok()) return busy;
  request_.clear();
  EncodeNameRequest(MsgType::kStats, name, &request_);
  Result<ResponseView> response = RoundTrip(MsgType::kStats);
  if (!response.ok()) return response.status();
  if (!response.value().ok()) return response.value().ToStatus();
  return DecodeStatsOk(response.value());
}

}  // namespace server
}  // namespace mrl
