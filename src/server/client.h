#ifndef MRLQUANT_SERVER_CLIENT_H_
#define MRLQUANT_SERVER_CLIENT_H_

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "server/protocol.h"
#include "util/status.h"
#include "util/types.h"

namespace mrl {
namespace server {

/// Blocking single-connection client for mrlquantd. One request in flight
/// at a time; not thread-safe (open one client per thread — connections are
/// cheap and the server pins a connection to a worker anyway). Request and
/// response buffers are reused across calls, so a steady AddBatch loop
/// allocates nothing client-side either.
///
/// Transport failures (peer gone, short read) surface as Internal and leave
/// the client unusable (`connected()` turns false); server-side failures
/// surface as the server's own Status and the connection stays usable.
class Client {
 public:
  static Result<Client> ConnectUnix(const std::string& path);
  static Result<Client> ConnectTcp(const std::string& host,
                                   std::uint16_t port);

  Client(Client&& other) noexcept;
  Client& operator=(Client&& other) noexcept;
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  bool connected() const { return fd_ >= 0; }
  void Close();

  Status CreateSketch(std::string_view name, const TenantConfig& config);
  /// Returns the tenant's element count after the batch.
  Result<std::uint64_t> AddBatch(std::string_view name,
                                 std::span<const Value> values);
  Result<double> Query(std::string_view name, double phi);
  Status QueryMulti(std::string_view name, std::span<const double> phis,
                    std::vector<Value>* out);
  /// Tenant checkpoint blob; also persists the server registry durably when
  /// the daemon runs with a checkpoint path.
  Status Snapshot(std::string_view name, std::vector<std::uint8_t>* blob);
  Status Delete(std::string_view name);
  /// Pass an empty name for registry-wide statistics only.
  Result<StatsReply> Stats(std::string_view name);

 private:
  explicit Client(int fd) : fd_(fd) {}

  /// Writes request_, reads one response frame into response_, and decodes
  /// its header. Checks that the response echoes `sent` as request type.
  Result<ResponseView> RoundTrip(MsgType sent);

  int fd_ = -1;
  std::vector<std::uint8_t> request_;
  std::vector<std::uint8_t> response_;
};

}  // namespace server
}  // namespace mrl

#endif  // MRLQUANT_SERVER_CLIENT_H_
