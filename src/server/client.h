#ifndef MRLQUANT_SERVER_CLIENT_H_
#define MRLQUANT_SERVER_CLIENT_H_

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "server/protocol.h"
#include "util/status.h"
#include "util/types.h"

namespace mrl {
namespace server {

/// Blocking single-connection client for mrlquantd. The plain methods run
/// one request per round trip; the Pipeline* methods queue many requests
/// and flush them in one write (the server answers in request order). Not
/// thread-safe (open one client per thread — connections are cheap and the
/// server routes each connection to its tenant's shard anyway). Request
/// and response buffers are reused across calls, so a steady AddBatch loop
/// allocates nothing client-side either.
///
/// Transport failures (peer gone, short read) surface as Internal and leave
/// the client unusable (`connected()` turns false); server-side failures
/// surface as the server's own Status and the connection stays usable.
class Client {
 public:
  /// `timeout_ms` bounds the connect itself (nonblocking connect + poll);
  /// negative blocks indefinitely. I/O on the established connection is
  /// unbounded until SetIoTimeout is called.
  static Result<Client> ConnectUnix(const std::string& path,
                                    int timeout_ms = -1);
  static Result<Client> ConnectTcp(const std::string& host, std::uint16_t port,
                                   int timeout_ms = -1);

  Client(Client&& other) noexcept;
  Client& operator=(Client&& other) noexcept;
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  bool connected() const { return fd_ >= 0; }
  void Close();

  /// Bounds every subsequent send/recv on this connection (SO_SNDTIMEO /
  /// SO_RCVTIMEO). A deadline that expires surfaces as Internal mentioning
  /// "timed out" and closes the connection — a stalled server is a
  /// transport failure, not a retriable condition on this socket.
  /// `timeout_ms <= 0` removes the bound.
  Status SetIoTimeout(int timeout_ms);

  Status CreateSketch(std::string_view name, const TenantConfig& config);
  /// Returns the tenant's element count after the batch.
  Result<std::uint64_t> AddBatch(std::string_view name,
                                 std::span<const Value> values);
  Result<double> Query(std::string_view name, double phi);
  Status QueryMulti(std::string_view name, std::span<const double> phis,
                    std::vector<Value>* out);
  /// Tenant checkpoint blob; also persists the server registry durably when
  /// the daemon runs with a checkpoint path.
  Status Snapshot(std::string_view name, std::vector<std::uint8_t>* blob);
  Status Delete(std::string_view name);
  /// Pass an empty name for registry-wide statistics only.
  Result<StatsReply> Stats(std::string_view name);
  /// Liveness probe: an empty request the server answers immediately.
  Status Ping();
  /// Fetches tenant `name` as a serialized Section 6 partial summary
  /// (core/partial.h) for router-side fan-out merging.
  Status FetchSummary(std::string_view name, std::vector<std::uint8_t>* blob);
  /// Create-or-replace tenant `name` from a Snapshot checkpoint blob —
  /// replica resync and checkpoint shipping.
  Status RestoreTenant(std::string_view name, const TenantConfig& config,
                       std::span<const std::uint8_t> blob);

  // -------------------------------------------------------------------------
  // Pipelining (docs/wire_protocol.md, "Request pipelining"): queue any
  // number of requests, send them in one write, then collect the responses
  // — the server returns them on this connection in request order, so one
  // round trip amortizes over the whole batch. Queued requests are
  // buffered client-side until PipelineFlush; mixing in a blocking call
  // while a pipeline is queued is an error (FailedPrecondition).

  /// One reply from a pipelined flush, positionally matching the queued
  /// requests.
  struct PipelineReply {
    MsgType request_type = MsgType::kResponse;
    Status status;            ///< the server's status for this request
    std::uint64_t count = 0;  ///< AddBatch: tenant count after the batch
    double value = 0;         ///< Query: the quantile answer
  };

  void PipelineCreateSketch(std::string_view name, const TenantConfig& config);
  void PipelineAddBatch(std::string_view name, std::span<const Value> values);
  void PipelineQuery(std::string_view name, double phi);

  /// Queued-but-unflushed request count.
  std::size_t pipeline_depth() const { return expected_.size(); }

  /// Sends every queued request in one write and reads exactly as many
  /// responses, appending one PipelineReply per request (in order) to
  /// *replies. Returns non-OK only on transport/framing failure (the
  /// connection is closed); per-request server errors land in each reply's
  /// status. `replies` may be null when only the side effects matter —
  /// responses are still read and the per-request statuses discarded.
  Status PipelineFlush(std::vector<PipelineReply>* replies);

 private:
  explicit Client(int fd) : fd_(fd) {}

  /// FailedPrecondition while pipeline requests are queued — the blocking
  /// methods call this BEFORE touching request_, so a misplaced blocking
  /// call cannot clobber a queued pipeline.
  Status CheckNoPipeline() const;

  /// Writes request_, reads one response frame into response_, and decodes
  /// its header. Checks that the response echoes `sent` as request type.
  Result<ResponseView> RoundTrip(MsgType sent);

  /// Reads one response frame into response_ and decodes its header.
  Result<ResponseView> ReadResponse(MsgType sent);

  int fd_ = -1;
  std::vector<std::uint8_t> request_;
  std::vector<std::uint8_t> response_;
  /// Request types queued in request_ awaiting PipelineFlush.
  std::vector<MsgType> expected_;
};

}  // namespace server
}  // namespace mrl

#endif  // MRLQUANT_SERVER_CLIENT_H_
