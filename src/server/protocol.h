#ifndef MRLQUANT_SERVER_PROTOCOL_H_
#define MRLQUANT_SERVER_PROTOCOL_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

#include "util/status.h"
#include "util/types.h"

namespace mrl {
namespace server {

/// The mrlquantd wire protocol (docs/wire_protocol.md): length-prefixed
/// binary frames over a byte stream (TCP or Unix-domain socket).
///
/// Frame layout, all integers little-endian:
///
///   | u32 body_len | u8 version | u8 type | u16 reserved | u32 crc | payload |
///
/// `body_len` counts everything after itself (8 header bytes + payload);
/// `crc` is CRC-32 (IEEE, reflected 0xEDB88320) over the payload only. The
/// decoder is strict: unknown version, unknown type, nonzero reserved bits,
/// oversized length, or a CRC mismatch reject the frame with a Status —
/// never a crash — which is what makes it safe to fuzz and to expose to
/// untrusted peers (fuzz/fuzz_protocol_decode.cc).
/// Version history: 1 = initial protocol (kinds unknown-n, sharded);
/// 2 = pluggable backends (CREATE_SKETCH/STATS gained the kll and
/// det_reservoir kinds); 3 = distributed tier (PING health probe,
/// FETCH_SUMMARY partial-summary export, RESTORE tenant install — the
/// router/backend ops). Frames carrying any other version are rejected.
inline constexpr std::uint8_t kProtocolVersion = 3;

/// Bytes before the payload: length prefix + version + type + reserved + crc.
inline constexpr std::size_t kFrameHeaderSize = 12;

/// Hard cap on the payload of a single frame (16 MiB) — bounds what a
/// decoder will ever ask a transport buffer to hold.
inline constexpr std::size_t kMaxPayload = std::size_t{1} << 24;

/// Tenant names are path-safe identifiers: 1..128 chars from
/// [A-Za-z0-9_.-], not starting with '.' (they appear in checkpoint files
/// and logs).
inline constexpr std::size_t kMaxTenantNameLen = 128;

enum class MsgType : std::uint8_t {
  kCreateSketch = 1,
  kAddBatch = 2,
  kQuery = 3,
  kQueryMulti = 4,
  kSnapshot = 5,
  kDelete = 6,
  kStats = 7,
  kResponse = 8,
  kPing = 9,          ///< health probe, empty payload (protocol v3)
  kFetchSummary = 10, ///< Section 6 partial-summary export (protocol v3)
  kRestore = 11,      ///< install a tenant from a checkpoint (protocol v3)
};

/// True for the request/response types above.
bool IsKnownMsgType(std::uint8_t type);

/// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) of `data`.
std::uint32_t Crc32(const std::uint8_t* data, std::size_t n);

bool IsValidTenantName(std::string_view name);

/// Which sketch backs a tenant (CREATE_SKETCH `kind` field).
enum class SketchKind : std::uint8_t {
  kUnknownN = 0,      ///< single UnknownNSketch (single-writer tenants)
  kSharded = 1,       ///< ShardedQuantileSketch (round-robin ingestion)
  kKll = 2,           ///< KllSketch (protocol v2)
  kDetReservoir = 3,  ///< DeterministicReservoirSketch (protocol v2)
};

/// The single validator for kind bytes arriving from the outside — the
/// CREATE_SKETCH decoder, the STATS reply decoder and the registry
/// checkpoint decoder all call it, so adding a backend extends exactly one
/// check. Unknown bytes must produce a clean Status, never a crash.
bool IsKnownSketchKind(std::uint8_t kind);

/// Display name of a kind ("unknown_n", "sharded", "kll", "det_reservoir";
/// "invalid" for out-of-range values). Used in server error text and the
/// CLI stats output.
std::string_view SketchKindName(SketchKind kind);

/// Tenant configuration carried by CREATE_SKETCH and persisted in registry
/// checkpoints.
struct TenantConfig {
  SketchKind kind = SketchKind::kUnknownN;
  double eps = 0.01;
  double delta = 1e-4;
  std::int32_t num_shards = 4;  ///< kSharded only
  std::uint64_t seed = 1;
};

inline bool operator==(const TenantConfig& a, const TenantConfig& b) {
  return a.kind == b.kind && a.eps == b.eps && a.delta == b.delta &&
         a.num_shards == b.num_shards && a.seed == b.seed;
}

// ---------------------------------------------------------------------------
// Frame scaffolding

/// A parsed frame header plus a view of its payload (borrowed from the
/// caller's buffer; valid only while that buffer lives).
struct FrameView {
  MsgType type = MsgType::kResponse;
  const std::uint8_t* payload = nullptr;
  std::size_t payload_len = 0;
  std::size_t frame_size = 0;  ///< total bytes consumed, incl. length prefix
};

/// Parses and CRC-checks one complete frame at the front of [data, size).
/// Fails with InvalidArgument on any malformed header and with OutOfRange
/// when the buffer does not yet hold the whole frame (a stream transport
/// should read more and retry).
Result<FrameView> DecodeFrame(const std::uint8_t* data, std::size_t size);

/// As DecodeFrame for a frame whose 4-byte length prefix was already
/// consumed by the transport: `body` must hold exactly the `body_len` bytes
/// the prefix announced.
Result<FrameView> DecodeFrameBody(const std::uint8_t* body, std::size_t len);

/// Incremental frame writer: appends the header to *out, lets the caller
/// append payload bytes, and backpatches length + CRC in Finish(). Appends
/// only — steady-state encoding into a warmed buffer allocates nothing.
class FrameBuilder {
 public:
  FrameBuilder(MsgType type, std::vector<std::uint8_t>* out);

  void PutU8(std::uint8_t v) { out_->push_back(v); }
  void PutU16(std::uint16_t v);
  void PutU32(std::uint32_t v);
  void PutU64(std::uint64_t v);
  void PutDouble(double v);
  /// u16 length + bytes.
  void PutName(std::string_view name);
  void PutBytes(const std::uint8_t* data, std::size_t n);

  /// Backpatches the length prefix and payload CRC. Must be called exactly
  /// once; the payload must not exceed kMaxPayload.
  void Finish();

 private:
  std::vector<std::uint8_t>* out_;
  std::size_t frame_start_;
};

// ---------------------------------------------------------------------------
// Requests
//
// Bulk numeric payloads (ADD_BATCH values, QUERY_MULTI ranks) stay in wire
// form inside the request view — a pointer into the frame buffer — so the
// hot ingestion path decodes them straight into a reusable scratch vector
// (DecodeDoublesInto) with no intermediate allocation.

struct CreateSketchRequest {
  std::string_view name;
  TenantConfig config;
};

struct AddBatchRequest {
  std::string_view name;
  const std::uint8_t* values_le = nullptr;  ///< count little-endian doubles
  std::uint64_t count = 0;
};

struct QueryRequest {
  std::string_view name;
  double phi = 0;
};

struct QueryMultiRequest {
  std::string_view name;
  const std::uint8_t* phis_le = nullptr;
  std::uint64_t count = 0;
};

/// SNAPSHOT / DELETE / STATS / FETCH_SUMMARY carry only a name (empty
/// allowed for STATS: global statistics).
struct NameRequest {
  std::string_view name;
};

/// RESTORE: create-or-replace a tenant from a checkpoint blob — the
/// router's replica-resync and checkpoint-shipping op. The blob stays in
/// wire form inside the view (a pointer into the frame buffer).
struct RestoreRequest {
  std::string_view name;
  TenantConfig config;
  const std::uint8_t* blob = nullptr;
  std::size_t blob_len = 0;
};

void EncodeCreateSketch(std::string_view name, const TenantConfig& config,
                        std::vector<std::uint8_t>* out);
void EncodeAddBatch(std::string_view name, std::span<const Value> values,
                    std::vector<std::uint8_t>* out);
void EncodeQuery(std::string_view name, double phi,
                 std::vector<std::uint8_t>* out);
void EncodeQueryMulti(std::string_view name, std::span<const double> phis,
                      std::vector<std::uint8_t>* out);
void EncodeNameRequest(MsgType type, std::string_view name,
                       std::vector<std::uint8_t>* out);
/// PING: empty payload.
void EncodePing(std::vector<std::uint8_t>* out);
void EncodeRestore(std::string_view name, const TenantConfig& config,
                   std::span<const std::uint8_t> blob,
                   std::vector<std::uint8_t>* out);

Result<CreateSketchRequest> DecodeCreateSketch(const std::uint8_t* payload,
                                               std::size_t len);
Result<AddBatchRequest> DecodeAddBatch(const std::uint8_t* payload,
                                       std::size_t len);
Result<QueryRequest> DecodeQuery(const std::uint8_t* payload,
                                 std::size_t len);
Result<QueryMultiRequest> DecodeQueryMulti(const std::uint8_t* payload,
                                           std::size_t len);
Result<NameRequest> DecodeNameRequest(MsgType type,
                                      const std::uint8_t* payload,
                                      std::size_t len);
/// PING carries no payload; rejects any trailing bytes.
Status DecodePing(const std::uint8_t* payload, std::size_t len);
Result<RestoreRequest> DecodeRestore(const std::uint8_t* payload,
                                     std::size_t len);

/// Peeks the tenant name at the front of a request payload without fully
/// decoding it — every request payload begins with a u16-length-prefixed
/// name. The sharded server uses this to route a connection to the shard
/// owning the tenant before dispatch. Returns an empty view when the
/// payload is too short or the length runs past it (the real decoder will
/// produce the error); does not validate name characters.
std::string_view FrameTenantName(const std::uint8_t* payload,
                                 std::size_t len);

/// Copies `count` little-endian doubles into *out (capacity reused).
/// `reject_nan` refuses NaN bit patterns with InvalidArgument — ADD_BATCH
/// and QUERY_MULTI both use it, keeping the sketches' NaN CHECK-abort
/// unreachable from the network.
Status DecodeDoublesInto(const std::uint8_t* le, std::uint64_t count,
                         bool reject_nan, std::vector<double>* out);

// ---------------------------------------------------------------------------
// Responses
//
// Every request is answered by one kResponse frame:
//
//   | u8 request_type | u8 status_code | u16 msg_len | msg | body |
//
// status_code is mrl::StatusCode (0 = OK). On error `msg` holds the
// human-readable message and `body` is empty; on OK `msg` is empty and
// `body` is the request-type-specific reply below.

struct StatsReply {
  std::uint64_t num_tenants = 0;  ///< registry-wide
  std::uint64_t total_count = 0;  ///< registry-wide ingested elements
  bool tenant_present = false;    ///< remaining fields valid iff true
  SketchKind tenant_kind = SketchKind::kUnknownN;
  std::uint64_t tenant_count = 0;
  std::uint64_t tenant_memory_elements = 0;
};

/// Parsed response header plus borrowed views of message and body.
struct ResponseView {
  MsgType request_type = MsgType::kResponse;
  StatusCode code = StatusCode::kOk;
  std::string_view message;
  const std::uint8_t* body = nullptr;
  std::size_t body_len = 0;

  bool ok() const { return code == StatusCode::kOk; }
  /// Materializes the wire error as a Status (OK when ok()).
  Status ToStatus() const;
};

void EncodeErrorResponse(MsgType request_type, const Status& status,
                         std::vector<std::uint8_t>* out);
/// OK response with an empty body (CREATE_SKETCH, DELETE).
void EncodeEmptyOk(MsgType request_type, std::vector<std::uint8_t>* out);
/// ADD_BATCH: u64 tenant element count after the batch.
void EncodeAddBatchOk(std::uint64_t new_count, std::vector<std::uint8_t>* out);
/// QUERY: one double.
void EncodeQueryOk(double value, std::vector<std::uint8_t>* out);
/// QUERY_MULTI: u64 count + doubles.
void EncodeQueryMultiOk(std::span<const Value> values,
                        std::vector<std::uint8_t>* out);
/// SNAPSHOT: u32 length + tenant checkpoint blob.
void EncodeSnapshotOk(std::span<const std::uint8_t> blob,
                      std::vector<std::uint8_t>* out);
void EncodeStatsOk(const StatsReply& stats, std::vector<std::uint8_t>* out);
/// FETCH_SUMMARY: u32 length + serialized partial summary
/// (core/partial.h).
void EncodeFetchSummaryOk(std::span<const std::uint8_t> blob,
                          std::vector<std::uint8_t>* out);

Result<ResponseView> DecodeResponse(const std::uint8_t* payload,
                                    std::size_t len);
Result<std::uint64_t> DecodeAddBatchOk(const ResponseView& response);
Result<double> DecodeQueryOk(const ResponseView& response);
Status DecodeQueryMultiOk(const ResponseView& response,
                          std::vector<Value>* out);
Status DecodeSnapshotOk(const ResponseView& response,
                        std::vector<std::uint8_t>* out);
Result<StatsReply> DecodeStatsOk(const ResponseView& response);
Status DecodeFetchSummaryOk(const ResponseView& response,
                            std::vector<std::uint8_t>* out);

}  // namespace server
}  // namespace mrl

#endif  // MRLQUANT_SERVER_PROTOCOL_H_
