#ifndef MRLQUANT_SERVER_EVENT_LOOP_H_
#define MRLQUANT_SERVER_EVENT_LOOP_H_

#include <sys/epoll.h>

#include <cstdint>

#include "util/status.h"

namespace mrl {
namespace server {

/// Thin epoll wrapper with an eventfd wakeup channel, owned by exactly one
/// thread (the waiter); Wake() is the only cross-thread entry point. This
/// is what replaces every timeout-poll loop in the server: threads block
/// in Wait() indefinitely and are woken by readiness or by Wake(), so an
/// idle daemon performs zero periodic wakeups (verifiable with strace -c:
/// no poll/epoll_wait churn at rest).
class EventLoop {
 public:
  static Result<EventLoop> Create();

  /// Empty loop (no epoll set); usable only as a move-assignment target.
  EventLoop() = default;
  ~EventLoop();

  EventLoop(EventLoop&& other) noexcept;
  EventLoop& operator=(EventLoop&& other) noexcept;
  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  /// Registers `fd` with `events` (EPOLLIN/EPOLLOUT/...); `data` comes
  /// back verbatim in the epoll_event. The wakeup eventfd is pre-registered
  /// with data == nullptr, so callers can use null as "wakeup" sentinel.
  Status Add(int fd, std::uint32_t events, void* data);
  Status Modify(int fd, std::uint32_t events, void* data);
  void Remove(int fd);

  /// Blocks until readiness or Wake(); returns the number of events
  /// written to `events` (retries EINTR internally). timeout_ms < 0 means
  /// block indefinitely.
  int Wait(epoll_event* events, int max_events, int timeout_ms);

  /// Wakes the waiter. Safe from any thread, async-signal-safe (a single
  /// eventfd write), idempotent until consumed.
  void Wake();

  /// Drains the wakeup eventfd; call when Wait() reports the null-data
  /// event. Returns true if a wakeup was pending.
  bool ConsumeWake();

 private:
  EventLoop(int epoll_fd, int wake_fd)
      : epoll_fd_(epoll_fd), wake_fd_(wake_fd) {}

  int epoll_fd_ = -1;
  int wake_fd_ = -1;
};

}  // namespace server
}  // namespace mrl

#endif  // MRLQUANT_SERVER_EVENT_LOOP_H_
