#include "server/shard.h"

#include <cstring>
#include <utility>

#include "util/logging.h"

namespace mrl {
namespace server {

namespace {

constexpr int kMaxEvents = 64;

std::uint32_t LoadU32Le(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) |
         (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
}

/// True when the 4-byte length prefix can never frame a valid message —
/// there is no way to resync a byte stream after that, so the connection
/// is dropped (same contract as the PR5 worker served).
bool UnframeableBodyLen(std::uint32_t body_len) {
  return body_len < kFrameHeaderSize - 4 ||
         body_len > kMaxPayload + kFrameHeaderSize - 4;
}

}  // namespace

Shard::Shard(std::size_t index, SketchRegistry* registry,
             std::size_t write_buffer_cap)
    : index_(index),
      registry_(registry),
      write_buffer_cap_(write_buffer_cap) {}

Shard::~Shard() {
  RequestStop();
  Join();
}

Status Shard::Start() {
  Result<EventLoop> loop = EventLoop::Create();
  if (!loop.ok()) return loop.status();
  loop_ = std::move(loop).value();
  thread_ = std::thread(&Shard::Loop, this);
  return Status::OK();
}

void Shard::RequestStop() {
  if (!stopping_.exchange(true, std::memory_order_acq_rel)) {
    loop_.Wake();
  }
}

void Shard::Join() {
  if (thread_.joinable()) thread_.join();
  conns_.clear();  // closes every remaining fd
  MutexLock lock(inbox_mu_);
  inbox_.clear();
}

void Shard::Adopt(std::unique_ptr<Conn> conn) {
  {
    MutexLock lock(inbox_mu_);
    if (!stopping_.load(std::memory_order_acquire)) {
      inbox_.push_back(std::move(conn));
    }
    // else: dropped here, destructor closes the socket.
  }
  loop_.Wake();
}

void Shard::Loop() {
  epoll_event events[kMaxEvents];
  while (!stopping_.load(std::memory_order_acquire)) {
    const int n = loop_.Wait(events, kMaxEvents, /*timeout_ms=*/-1);
    if (n < 0) break;
    for (int i = 0; i < n; ++i) {
      if (events[i].data.ptr == nullptr) {
        loop_.ConsumeWake();
        if (stopping_.load(std::memory_order_acquire)) return;
        DrainInbox();
        continue;
      }
      Conn* conn = static_cast<Conn*>(events[i].data.ptr);
      // One epoll_event per fd per Wait: after a handler closes or
      // migrates the connection the pointer is dead, so each branch below
      // is terminal for this event.
      if ((events[i].events & EPOLLIN) != 0) {
        OnReadable(conn);
      } else if ((events[i].events & EPOLLOUT) != 0) {
        OnWritable(conn);
      } else if ((events[i].events & (EPOLLHUP | EPOLLERR)) != 0) {
        CloseConn(conn);
      }
    }
  }
}

void Shard::DrainInbox() {
  // Swap the inbox out under the leaf lock, register outside it.
  std::vector<std::unique_ptr<Conn>> adopted;
  {
    MutexLock lock(inbox_mu_);
    adopted.swap(inbox_);
  }
  for (std::unique_ptr<Conn>& owned : adopted) {
    Conn* conn = owned.get();
    const int fd = conn->fd();
    conns_.emplace(fd, std::move(owned));
    const std::uint32_t interest =
        conn->pending_out() > 0 ? (EPOLLIN | EPOLLOUT) : EPOLLIN;
    conn->want_write = (interest & EPOLLOUT) != 0;
    if (!loop_.Add(fd, interest, conn).ok()) {
      conns_.erase(fd);
      continue;
    }
    // A migrated connection arrives with its first frame already buffered;
    // nothing will re-arm EPOLLIN for userspace bytes, so process now.
    OnReadable(conn);
  }
}

void Shard::OnReadable(Conn* conn) {
  const Conn::IoResult io = conn->FillFromSocket();
  if (io == Conn::IoResult::kError) {
    CloseConn(conn);
    return;
  }
  if (!conn->routed && MaybeMigrate(conn)) return;
  ProcessFrames(conn);
  if (io == Conn::IoResult::kEof) {
    // Peer half-closed: everything decodable has been answered; finish
    // flushing the responses, then close.
    conn->closing = true;
  }
  FlushOrArm(conn);
}

void Shard::OnWritable(Conn* conn) { FlushOrArm(conn); }

bool Shard::MaybeMigrate(Conn* conn) {
  if (peers_.size() < 2) {
    conn->routed = true;
    return false;
  }
  const std::size_t avail = conn->available();
  if (avail < 4) return false;  // prefix not buffered yet: route later
  const std::uint32_t body_len = LoadU32Le(conn->data());
  if (UnframeableBodyLen(body_len)) {
    conn->routed = true;  // garbage: process (= drop) locally
    return false;
  }
  if (avail < 4 + static_cast<std::size_t>(body_len)) return false;
  conn->routed = true;
  // Peek the tenant name from the first frame's payload (after the 8
  // header bytes the prefix counts). Frames without a routable name
  // (global STATS, malformed) stay where round-robin put them.
  const std::string_view name =
      FrameTenantName(conn->data() + kFrameHeaderSize,
                      body_len - (kFrameHeaderSize - 4));
  if (name.empty()) return false;
  const std::size_t target =
      registry_->PartitionOf(name) % peers_.size();
  if (target == index_ || peers_[target].get() == this) return false;
  // Hand the whole connection over (its buffered input travels with it;
  // no response has been produced yet, so the write buffer is empty).
  const int fd = conn->fd();
  loop_.Remove(fd);
  auto it = conns_.find(fd);
  MRL_CHECK(it != conns_.end());
  std::unique_ptr<Conn> owned = std::move(it->second);
  conns_.erase(it);
  peers_[target]->Adopt(std::move(owned));
  return true;
}

void Shard::ProcessFrames(Conn* conn) {
  while (!conn->closing) {
    const std::size_t avail = conn->available();
    if (avail < 4) return;
    const std::uint32_t body_len = LoadU32Le(conn->data());
    if (UnframeableBodyLen(body_len)) {
      // Flush what has been answered, then drop the connection.
      conn->closing = true;
      return;
    }
    const std::size_t frame_size = 4 + static_cast<std::size_t>(body_len);
    if (avail < frame_size) return;  // partial frame: wait for more bytes
    const Result<FrameView> frame =
        DecodeFrameBody(conn->data() + 4, body_len);
    const std::size_t pending_before = conn->pending_out();
    MsgType request_type = MsgType::kResponse;
    if (!frame.ok()) {
      // Framing is intact (the prefix was sane) but the frame is malformed
      // (bad CRC, unknown type/version): answer the error, keep going.
      EncodeErrorResponse(MsgType::kResponse, frame.status(), conn->out());
    } else if (frame.value().type == MsgType::kResponse) {
      EncodeErrorResponse(
          MsgType::kResponse,
          Status::InvalidArgument("response frame sent to server"),
          conn->out());
    } else {
      request_type = frame.value().type;
      HandleFrame(conn, frame.value().type, frame.value().payload,
                  frame.value().payload_len);
    }
    conn->Consume(frame_size);
    // Write-buffer cap: a pipelining client that outpaces its own reads
    // gets its newest response replaced by a ResourceExhausted ERROR and
    // the connection closed — bounded memory, never OOM. A single
    // oversized response with no backlog is let through (it drains
    // incrementally via EPOLLOUT).
    if (pending_before > 0 &&
        conn->pending_out() > conn->write_buffer_cap()) {
      conn->RollbackOut(pending_before);
      EncodeErrorResponse(
          request_type,
          Status::ResourceExhausted(
              "write buffer cap exceeded: read responses before "
              "pipelining more requests"),
          conn->out());
      conn->closing = true;
      return;
    }
  }
}

void Shard::HandleFrame(Conn* conn, MsgType type, const std::uint8_t* payload,
                        std::size_t payload_len) {
  std::vector<std::uint8_t>* out = conn->out();
  switch (type) {
    case MsgType::kCreateSketch: {
      Result<CreateSketchRequest> req =
          DecodeCreateSketch(payload, payload_len);
      if (!req.ok()) return EncodeErrorResponse(type, req.status(), out);
      const Status status =
          registry_->Create(req.value().name, req.value().config);
      if (!status.ok()) return EncodeErrorResponse(type, status, out);
      return EncodeEmptyOk(type, out);
    }
    case MsgType::kAddBatch: {
      Result<AddBatchRequest> req = DecodeAddBatch(payload, payload_len);
      if (!req.ok()) return EncodeErrorResponse(type, req.status(), out);
      const Status decoded =
          DecodeDoublesInto(req.value().values_le, req.value().count,
                            /*reject_nan=*/true, &doubles_);
      if (!decoded.ok()) return EncodeErrorResponse(type, decoded, out);
      Result<std::uint64_t> count =
          registry_->AddBatch(req.value().name, doubles_);
      if (!count.ok()) return EncodeErrorResponse(type, count.status(), out);
      return EncodeAddBatchOk(count.value(), out);
    }
    case MsgType::kQuery: {
      Result<QueryRequest> req = DecodeQuery(payload, payload_len);
      if (!req.ok()) return EncodeErrorResponse(type, req.status(), out);
      Result<Value> answer =
          registry_->Query(req.value().name, req.value().phi);
      if (!answer.ok()) {
        return EncodeErrorResponse(type, answer.status(), out);
      }
      return EncodeQueryOk(answer.value(), out);
    }
    case MsgType::kQueryMulti: {
      Result<QueryMultiRequest> req = DecodeQueryMulti(payload, payload_len);
      if (!req.ok()) return EncodeErrorResponse(type, req.status(), out);
      const Status decoded =
          DecodeDoublesInto(req.value().phis_le, req.value().count,
                            /*reject_nan=*/true, &doubles_);
      if (!decoded.ok()) return EncodeErrorResponse(type, decoded, out);
      const Status status =
          registry_->QueryMany(req.value().name, doubles_, &answers_);
      if (!status.ok()) return EncodeErrorResponse(type, status, out);
      return EncodeQueryMultiOk(answers_, out);
    }
    case MsgType::kSnapshot: {
      Result<NameRequest> req = DecodeNameRequest(type, payload, payload_len);
      if (!req.ok()) return EncodeErrorResponse(type, req.status(), out);
      const Status status = registry_->Snapshot(req.value().name, &blob_);
      if (!status.ok()) return EncodeErrorResponse(type, status, out);
      return EncodeSnapshotOk(blob_, out);
    }
    case MsgType::kDelete: {
      Result<NameRequest> req = DecodeNameRequest(type, payload, payload_len);
      if (!req.ok()) return EncodeErrorResponse(type, req.status(), out);
      const Status status = registry_->Delete(req.value().name);
      if (!status.ok()) return EncodeErrorResponse(type, status, out);
      return EncodeEmptyOk(type, out);
    }
    case MsgType::kStats: {
      Result<NameRequest> req = DecodeNameRequest(type, payload, payload_len);
      if (!req.ok()) return EncodeErrorResponse(type, req.status(), out);
      const RegistryStats global = registry_->GlobalStats();
      StatsReply reply;
      reply.num_tenants = global.num_tenants;
      reply.total_count = global.total_count;
      if (!req.value().name.empty()) {
        const TenantStats tenant = registry_->Stats(req.value().name);
        reply.tenant_present = tenant.present;
        reply.tenant_kind = tenant.config.kind;
        reply.tenant_count = tenant.count;
        reply.tenant_memory_elements = tenant.memory_elements;
      }
      return EncodeStatsOk(reply, out);
    }
    case MsgType::kPing: {
      const Status status = DecodePing(payload, payload_len);
      if (!status.ok()) return EncodeErrorResponse(type, status, out);
      return EncodeEmptyOk(type, out);
    }
    case MsgType::kFetchSummary: {
      Result<NameRequest> req = DecodeNameRequest(type, payload, payload_len);
      if (!req.ok()) return EncodeErrorResponse(type, req.status(), out);
      const Status status = registry_->FetchPartial(req.value().name, &blob_);
      if (!status.ok()) return EncodeErrorResponse(type, status, out);
      return EncodeFetchSummaryOk(blob_, out);
    }
    case MsgType::kRestore: {
      Result<RestoreRequest> req = DecodeRestore(payload, payload_len);
      if (!req.ok()) return EncodeErrorResponse(type, req.status(), out);
      const Status status = registry_->Install(
          req.value().name, req.value().config,
          std::span<const std::uint8_t>(req.value().blob,
                                        req.value().blob_len));
      if (!status.ok()) return EncodeErrorResponse(type, status, out);
      return EncodeEmptyOk(type, out);
    }
    case MsgType::kResponse:
      break;  // rejected by ProcessFrames
  }
  EncodeErrorResponse(type, Status::Unimplemented("unhandled request type"),
                      out);
}

void Shard::FlushOrArm(Conn* conn) {
  if (conn->Flush() == Conn::IoResult::kError) {
    CloseConn(conn);
    return;
  }
  if (conn->pending_out() > 0) {
    if (!conn->want_write) {
      conn->want_write = true;
      if (!loop_.Modify(conn->fd(), EPOLLIN | EPOLLOUT, conn).ok()) {
        CloseConn(conn);
      }
    }
    return;
  }
  if (conn->closing) {
    CloseConn(conn);
    return;
  }
  if (conn->want_write) {
    conn->want_write = false;
    if (!loop_.Modify(conn->fd(), EPOLLIN, conn).ok()) CloseConn(conn);
  }
}

void Shard::CloseConn(Conn* conn) {
  loop_.Remove(conn->fd());
  conns_.erase(conn->fd());  // destroys the Conn, closing the fd
}

}  // namespace server
}  // namespace mrl
