#ifndef MRLQUANT_SERVER_SERVER_H_
#define MRLQUANT_SERVER_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "server/event_loop.h"
#include "server/registry.h"
#include "server/shard.h"
#include "util/status.h"
#include "util/thread_annotations.h"

namespace mrl {
namespace server {

struct ServerOptions {
  /// Unix-domain socket path; empty disables the UDS listener.
  std::string uds_path;
  /// TCP port on 127.0.0.1; 0 disables the TCP listener. At least one
  /// listener must be enabled.
  std::uint16_t tcp_port = 0;
  /// Shared-nothing event-loop shards, each a thread with its own epoll
  /// set and registry partition. 0 means one per core. A shard multiplexes
  /// any number of connections, so — unlike the PR5 worker pool — this is
  /// not a concurrent-connection cap.
  int num_shards = 0;
  /// Registry configuration (tenant cap, checkpoint path, free pool).
  /// `num_partitions` is overridden to the resolved shard count so
  /// "partition i" and "shard i" coincide.
  RegistryOptions registry;
  /// When > 0 and a checkpoint path is configured, a housekeeping thread
  /// checkpoints the registry this often.
  int checkpoint_interval_ms = 0;
  /// Checkpoint once more during Stop(). Off by default so tests can model
  /// a crash: whatever the last explicit/periodic checkpoint captured is
  /// exactly what a restarted daemon recovers.
  bool checkpoint_on_stop = false;
  /// Per-connection cap on buffered-but-unflushed response bytes; a
  /// pipelining client that outruns its own reads is answered with a
  /// ResourceExhausted ERROR and closed instead of growing the buffer
  /// without bound. 0 means one max-size frame plus slack (so SNAPSHOT of
  /// the largest tenant always fits).
  std::size_t write_buffer_cap = 0;
};

/// Sharded event-loop socket daemon (docs/engineering.md, "The sharded
/// event-loop server"): an acceptor thread multiplexes the listen sockets
/// and hands accepted connections round-robin to N shared-nothing shards;
/// each shard owns an epoll set, the connections routed to it, and the
/// registry partition with its index, so once a connection migrates to its
/// tenant's home shard (on its first frame) steady-state ADD_BATCH touches
/// no cross-shard lock. Connections are nonblocking with buffered framing
/// and request pipelining — many frames decoded per read, responses
/// batched per write — so a single fat connection can keep a shard busy.
/// Every thread blocks in epoll_wait indefinitely; an idle daemon performs
/// zero periodic wakeups.
class QuantileServer {
 public:
  /// Binds the configured listeners, recovers the registry from its
  /// checkpoint (if any), and starts the acceptor + shard threads.
  static Result<std::unique_ptr<QuantileServer>> Create(ServerOptions options);

  ~QuantileServer();

  QuantileServer(const QuantileServer&) = delete;
  QuantileServer& operator=(const QuantileServer&) = delete;

  /// Stops accepting, winds down shards (closing their connections),
  /// closes sockets. Idempotent.
  void Stop();

  /// Port actually bound (useful with an ephemeral tcp_port request).
  std::uint16_t tcp_port() const { return bound_tcp_port_; }

  int num_shards() const { return static_cast<int>(shards_.size()); }

  SketchRegistry& registry() { return registry_; }
  const SketchRegistry& registry() const { return registry_; }

 private:
  explicit QuantileServer(ServerOptions options);

  Status Start();

  void AcceptLoop();
  void HousekeepingLoop() MRLQUANT_EXCLUDES(housekeeper_mu_);

  ServerOptions options_;
  SketchRegistry registry_;

  int uds_listen_fd_ = -1;
  int tcp_listen_fd_ = -1;
  std::uint16_t bound_tcp_port_ = 0;

  std::atomic<bool> running_{false};

  /// The shards; index i serves registry partition i. Stable once Start()
  /// returns (shards hold a span over this vector for migration).
  std::vector<std::unique_ptr<Shard>> shards_;

  /// Acceptor: epolls the listen fds, blocks until a connection or a
  /// shutdown wakeup arrives — no timeout polling.
  std::optional<EventLoop> accept_loop_;
  std::thread acceptor_;

  /// Housekeeper: periodic checkpoints on a condvar timed wait (absent
  /// entirely when no interval is configured — an idle daemon has no
  /// timers at all). housekeeper_mu_ is a leaf lock.
  std::thread housekeeper_;
  Mutex housekeeper_mu_;
  std::condition_variable housekeeper_cv_;
  bool housekeeper_stop_ MRLQUANT_GUARDED_BY(housekeeper_mu_) = false;
};

}  // namespace server
}  // namespace mrl

#endif  // MRLQUANT_SERVER_SERVER_H_
