#ifndef MRLQUANT_SERVER_SERVER_H_
#define MRLQUANT_SERVER_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "server/registry.h"
#include "util/status.h"
#include "util/thread_annotations.h"

namespace mrl {
namespace server {

struct ServerOptions {
  /// Unix-domain socket path; empty disables the UDS listener.
  std::string uds_path;
  /// TCP port on 127.0.0.1; 0 disables the TCP listener. At least one
  /// listener must be enabled.
  std::uint16_t tcp_port = 0;
  /// Worker threads. Each worker serves one connection at a time, so this
  /// is also the concurrent-connection budget; further connections queue.
  int num_workers = 4;
  /// Registry configuration (tenant cap, checkpoint path, free pool).
  RegistryOptions registry;
  /// When > 0 and a checkpoint path is configured, a housekeeping thread
  /// checkpoints the registry this often.
  int checkpoint_interval_ms = 0;
  /// Checkpoint once more during Stop(). Off by default so tests can model
  /// a crash: whatever the last explicit/periodic checkpoint captured is
  /// exactly what a restarted daemon recovers.
  bool checkpoint_on_stop = false;
};

/// Threaded socket daemon: an acceptor thread feeds accepted connections to
/// a fixed worker pool; each worker owns per-connection scratch buffers
/// (frame, decoded values, response) that are reused across requests, so
/// steady-state ADD_BATCH handling performs no heap allocation
/// (bench/server_throughput.cc pins this with a counting operator new).
class QuantileServer {
 public:
  /// Binds the configured listeners, recovers the registry from its
  /// checkpoint (if any), and starts the acceptor + worker threads.
  static Result<std::unique_ptr<QuantileServer>> Create(ServerOptions options);

  ~QuantileServer();

  QuantileServer(const QuantileServer&) = delete;
  QuantileServer& operator=(const QuantileServer&) = delete;

  /// Stops accepting, drains workers, closes sockets. Idempotent.
  void Stop();

  /// Port actually bound (useful with an ephemeral tcp_port request).
  std::uint16_t tcp_port() const { return bound_tcp_port_; }

  SketchRegistry& registry() { return registry_; }
  const SketchRegistry& registry() const { return registry_; }

 private:
  explicit QuantileServer(ServerOptions options);

  Status Start();

  void AcceptLoop() MRLQUANT_EXCLUDES(queue_mu_);
  void WorkerLoop() MRLQUANT_EXCLUDES(queue_mu_);
  void HousekeepingLoop();

  /// Reusable per-connection scratch owned by one worker.
  struct WorkerScratch {
    std::vector<std::uint8_t> frame;     ///< one request body
    std::vector<std::uint8_t> response;  ///< one encoded response frame
    std::vector<double> doubles;         ///< decoded values / phis
    std::vector<Value> answers;          ///< QueryMany results
    std::vector<std::uint8_t> blob;      ///< Snapshot payload
  };

  /// Serves one connection until EOF/error; returns only transport errors.
  void ServeConnection(int fd, WorkerScratch* scratch);

  /// Decodes the frame body, executes it against the registry, and encodes
  /// the response into scratch->response.
  void HandleFrame(MsgType type, const std::uint8_t* payload,
                   std::size_t payload_len, WorkerScratch* scratch);

  ServerOptions options_;
  SketchRegistry registry_;

  int uds_listen_fd_ = -1;
  int tcp_listen_fd_ = -1;
  std::uint16_t bound_tcp_port_ = 0;

  std::atomic<bool> running_{false};
  std::thread acceptor_;
  std::thread housekeeper_;
  std::vector<std::thread> workers_;

  /// Connection hand-off: the acceptor pushes accepted fds, workers pop
  /// them. queue_mu_ is a leaf lock — nothing else is ever acquired while
  /// it is held (in particular not the registry's map_mu_), so it cannot
  /// participate in a lock-order cycle.
  Mutex queue_mu_;
  std::condition_variable queue_cv_;
  std::deque<int> pending_fds_ MRLQUANT_GUARDED_BY(queue_mu_);
};

}  // namespace server
}  // namespace mrl

#endif  // MRLQUANT_SERVER_SERVER_H_
