#include "server/conn.h"

#include <sys/socket.h>
#include <sys/uio.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace mrl {
namespace server {

namespace {

/// Spill chunk for reads that overflow the warmed input buffer: large
/// enough that a fresh connection reaches its steady-state capacity in a
/// handful of events, small enough to live on the stack.
constexpr std::size_t kReadSpill = 64 * 1024;

}  // namespace

Conn::Conn(int fd, std::size_t write_buffer_cap)
    : fd_(fd), write_buffer_cap_(write_buffer_cap) {}

Conn::~Conn() {
  if (fd_ >= 0) ::close(fd_);
}

Conn::IoResult Conn::FillFromSocket() {
  // Compact before reading so the whole warmed capacity is available as
  // one contiguous tail (memmove of the unconsumed remainder — typically a
  // partial frame, so small).
  if (in_head_ > 0) {
    const std::size_t remain = in_.size() - in_head_;
    if (remain > 0) std::memmove(in_.data(), in_.data() + in_head_, remain);
    in_.resize(remain);  // NOLINT(mrlquant-no-alloc-in-hot-path): shrink only
    in_head_ = 0;
  }
  std::uint8_t spill[kReadSpill];
  for (;;) {
    const std::size_t size = in_.size();
    const std::size_t tail_room = in_.capacity() - size;
    // Expose the buffer's unused capacity as the first iovec so the common
    // case (burst fits the warmed buffer) costs zero copies, with the
    // stack spill as overflow.
    // NOLINTNEXTLINE(mrlquant-no-alloc-in-hot-path): resize within capacity
    in_.resize(size + tail_room);
    iovec iov[2];
    iov[0].iov_base = in_.data() + size;
    iov[0].iov_len = tail_room;
    iov[1].iov_base = spill;
    iov[1].iov_len = sizeof(spill);
    const int iovcnt = tail_room > 0 ? 2 : 1;
    const ssize_t r =
        ::readv(fd_, tail_room > 0 ? iov : iov + 1, iovcnt);
    if (r < 0) {
      in_.resize(size);  // NOLINT(mrlquant-no-alloc-in-hot-path): shrink only
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) return IoResult::kOk;
      return IoResult::kError;
    }
    if (r == 0) {
      in_.resize(size);  // NOLINT(mrlquant-no-alloc-in-hot-path): shrink only
      return IoResult::kEof;
    }
    const std::size_t got = static_cast<std::size_t>(r);
    if (got <= tail_room) {
      // NOLINTNEXTLINE(mrlquant-no-alloc-in-hot-path): shrink only
      in_.resize(size + got);
    } else {
      // Burst exceeded the warmed buffer: append the spilled bytes, growing
      // the buffer toward its new high-water mark (amortized away in steady
      // state — the next event finds the capacity already there).
      // NOLINTNEXTLINE(mrlquant-no-alloc-in-hot-path): high-water growth
      in_.insert(in_.end(), spill, spill + (got - tail_room));
    }
    if (got < tail_room + sizeof(spill)) return IoResult::kOk;
    // Both iovecs filled: more may be pending, go around again.
  }
}

void Conn::Consume(std::size_t n) {
  in_head_ += n;
  if (in_head_ == in_.size()) {
    in_.clear();
    in_head_ = 0;
  }
}

Conn::IoResult Conn::Flush() {
  while (out_head_ < out_.size()) {
    iovec iov;
    iov.iov_base = out_.data() + out_head_;
    iov.iov_len = out_.size() - out_head_;
    msghdr msg{};
    msg.msg_iov = &iov;
    msg.msg_iovlen = 1;
    // sendmsg rather than writev for MSG_NOSIGNAL: a peer that closed its
    // read side must surface as EPIPE, not kill the daemon.
    const ssize_t w = ::sendmsg(fd_, &msg, MSG_NOSIGNAL);
    if (w < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) return IoResult::kOk;
      return IoResult::kError;
    }
    out_head_ += static_cast<std::size_t>(w);
  }
  out_.clear();
  out_head_ = 0;
  return IoResult::kOk;
}

}  // namespace server
}  // namespace mrl
