#include "server/registry.h"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <utility>

#include "core/det_reservoir.h"
#include "core/kll.h"
#include "core/sharded.h"
#include "core/unknown_n.h"
#include "util/logging.h"
#include "util/serde.h"
#include "util/thread_annotations.h"

namespace mrl {
namespace server {

namespace {

// Registry checkpoint framing (docs/checkpoint_format.md, "Registry
// checkpoint"): header, tenant records, CRC-32 trailer over everything
// before it. Version 2 made the sketch record uniform across backends —
// one u32 length plus the backend's own Serialize() blob — replacing the
// v1 per-kind layouts; v1 files are rejected (re-ingest or re-snapshot).
// The on-disk format is partition-agnostic: tenants are written as one
// flat list and re-hashed into partitions on recovery, so the same file
// works across --shards settings.
constexpr std::uint32_t kRegistryMagic = 0x4D524C52;  // "MRLR"
constexpr std::uint8_t kRegistryVersion = 2;
constexpr std::uint64_t kMaxCheckpointTenants = std::uint64_t{1} << 20;

Status WriteFileAtomic(const std::string& path,
                       const std::vector<std::uint8_t>& bytes) {
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) {
    return Status::Internal("cannot open " + tmp + ": " +
                            std::strerror(errno));
  }
  const std::size_t written =
      bytes.empty() ? 0 : std::fwrite(bytes.data(), 1, bytes.size(), f);
  const bool flushed = std::fclose(f) == 0;
  if (written != bytes.size() || !flushed) {
    std::remove(tmp.c_str());
    return Status::Internal("short write to " + tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status::Internal("cannot rename " + tmp + " to " + path + ": " +
                            std::strerror(errno));
  }
  return Status::OK();
}

/// Reads `path` fully into *out. `*exists` is false (and the status OK)
/// when the file is simply absent.
Status ReadFileBytes(const std::string& path, std::vector<std::uint8_t>* out,
                     bool* exists) {
  *exists = false;
  out->clear();
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    if (errno == ENOENT) return Status::OK();
    return Status::Internal("cannot open " + path + ": " +
                            std::strerror(errno));
  }
  *exists = true;
  std::uint8_t chunk[1 << 16];
  std::size_t n;
  while ((n = std::fread(chunk, 1, sizeof(chunk), f)) > 0) {
    out->insert(out->end(), chunk, chunk + n);
  }
  const bool read_error = std::ferror(f) != 0;
  std::fclose(f);
  if (read_error) return Status::Internal("read error on " + path);
  return Status::OK();
}

Status ValidateConfig(const TenantConfig& config) {
  if (!IsKnownSketchKind(static_cast<std::uint8_t>(config.kind))) {
    return Status::InvalidArgument("unknown sketch kind");
  }
  if (!(config.eps > 0) || config.eps > 0.5) {
    return Status::InvalidArgument("eps must be in (0, 0.5]");
  }
  if (!(config.delta > 0) || config.delta >= 1) {
    return Status::InvalidArgument("delta must be in (0, 1)");
  }
  if (config.num_shards < 1 || config.num_shards > 1024) {
    return Status::InvalidArgument("num_shards must be in [1, 1024]");
  }
  return Status::OK();
}

/// Structural equality for recycling: a pooled sketch can serve any config
/// that solves to the same shape; the seed is replayed by Reset(seed).
bool StructurallyEqual(const TenantConfig& a, const TenantConfig& b) {
  return a.kind == b.kind && a.eps == b.eps && a.delta == b.delta &&
         (a.kind != SketchKind::kSharded || a.num_shards == b.num_shards);
}

void EncodeConfig(const TenantConfig& config, BinaryWriter* writer) {
  writer->PutU8(static_cast<std::uint8_t>(config.kind));
  writer->PutDouble(config.eps);
  writer->PutDouble(config.delta);
  writer->PutI32(config.num_shards);
  writer->PutU64(config.seed);
}

Status DecodeConfig(BinaryReader* reader, TenantConfig* config) {
  std::uint8_t kind;
  if (!reader->GetU8(&kind) || !reader->GetDouble(&config->eps) ||
      !reader->GetDouble(&config->delta) ||
      !reader->GetI32(&config->num_shards) ||
      !reader->GetU64(&config->seed)) {
    return reader->status();
  }
  if (!IsKnownSketchKind(kind)) {
    return Status::InvalidArgument("checkpoint: unknown sketch kind " +
                                   std::to_string(kind));
  }
  config->kind = static_cast<SketchKind>(kind);
  return ValidateConfig(*config);
}

/// Reads a u32-length-prefixed sketch blob into *blob.
Status GetBlob(BinaryReader* reader, std::vector<std::uint8_t>* blob) {
  std::uint32_t len;
  if (!reader->GetU32(&len)) return reader->status();
  if (len > reader->Remaining()) {
    return Status::InvalidArgument("checkpoint: sketch blob truncated");
  }
  blob->clear();
  blob->reserve(len);
  for (std::uint32_t i = 0; i < len; ++i) {
    std::uint8_t byte;
    if (!reader->GetU8(&byte)) return reader->status();
    blob->push_back(byte);
  }
  return Status::OK();
}

}  // namespace

SketchRegistry::SketchRegistry(RegistryOptions options)
    : options_(std::move(options)) {
  MRL_CHECK_GE(options_.max_tenants, 1u);
  MRL_CHECK_GE(options_.num_partitions, 1u);
  MRL_CHECK_LE(options_.num_partitions, 256u);
  partitions_.reserve(options_.num_partitions);
  for (std::size_t i = 0; i < options_.num_partitions; ++i) {
    partitions_.push_back(std::make_unique<Partition>());
  }
}

std::uint64_t SketchRegistry::NameHash(std::string_view name) {
  // FNV-1a, 64-bit: stable across platforms and standard-library versions,
  // so tenant → partition routing never changes under recompilation (the
  // checkpoint format does not depend on it either way).
  std::uint64_t hash = 0xcbf29ce484222325ull;
  for (const char c : name) {
    hash ^= static_cast<std::uint8_t>(c);
    hash *= 0x100000001b3ull;
  }
  return hash;
}

Result<std::unique_ptr<QuantileEstimator>> SketchRegistry::MakeSketch(
    const TenantConfig& config) {
  switch (config.kind) {
    case SketchKind::kUnknownN: {
      UnknownNOptions opts;
      opts.eps = config.eps;
      opts.delta = config.delta;
      opts.seed = config.seed;
      Result<UnknownNSketch> sketch = UnknownNSketch::Create(opts);
      if (!sketch.ok()) return sketch.status();
      return std::unique_ptr<QuantileEstimator>(
          new UnknownNSketch(std::move(sketch).value()));
    }
    case SketchKind::kSharded: {
      ShardedQuantileSketch::Options opts;
      opts.eps = config.eps;
      opts.delta = config.delta;
      opts.num_shards = config.num_shards;
      opts.seed = config.seed;
      Result<ShardedQuantileSketch> sketch =
          ShardedQuantileSketch::Create(opts);
      if (!sketch.ok()) return sketch.status();
      return std::unique_ptr<QuantileEstimator>(
          new ShardedQuantileSketch(std::move(sketch).value()));
    }
    case SketchKind::kKll: {
      KllOptions opts;
      opts.eps = config.eps;
      opts.delta = config.delta;
      opts.seed = config.seed;
      Result<KllSketch> sketch = KllSketch::Create(opts);
      if (!sketch.ok()) return sketch.status();
      return std::unique_ptr<QuantileEstimator>(
          new KllSketch(std::move(sketch).value()));
    }
    case SketchKind::kDetReservoir: {
      DetReservoirOptions opts;
      opts.eps = config.eps;
      opts.delta = config.delta;
      opts.seed = config.seed;
      Result<DeterministicReservoirSketch> sketch =
          DeterministicReservoirSketch::Create(opts);
      if (!sketch.ok()) return sketch.status();
      return std::unique_ptr<QuantileEstimator>(
          new DeterministicReservoirSketch(std::move(sketch).value()));
    }
  }
  return Status::InvalidArgument("unknown sketch kind");
}

Result<std::unique_ptr<QuantileEstimator>> SketchRegistry::ObtainSketch(
    Partition& p, const TenantConfig& config) {
  for (std::size_t i = 0; i < p.free_pool.size(); ++i) {
    if (!StructurallyEqual(p.free_pool[i].config, config)) continue;
    std::unique_ptr<QuantileEstimator> sketch =
        std::move(p.free_pool[i].sketch);
    p.free_pool.erase(p.free_pool.begin() + static_cast<std::ptrdiff_t>(i));
    // Reset(seed) makes the recycled sketch byte-identical to a fresh one
    // with this config (tests/reset_test.cc), so recycling is invisible.
    sketch->Reset(config.seed);
    recycled_creates_.fetch_add(1, std::memory_order_relaxed);
    return sketch;
  }
  return MakeSketch(config);
}

void SketchRegistry::RecycleLocked(Partition& p,
                                   std::shared_ptr<Tenant> tenant) {
  if (p.free_pool.size() >= options_.max_free_pool) return;
  Tenant& t = *tenant;
  // Partition::mu → Tenant::mu, the one annotated nesting (see
  // registry.h). The caller holds the last reference, so the lock cannot
  // contend; it exists to move the sketch out under its declared
  // capability.
  WriterLock lock(t.mu);
  p.free_pool.push_back({t.config, std::move(t.sketch)});
}

bool SketchRegistry::EvictGlobalLru() {
  // Phase 1: find the globally oldest tenant, visiting partitions one at a
  // time under their reader locks (two partition locks are never held at
  // once — see the lock-order comment in registry.h).
  std::size_t victim_part = partitions_.size();
  std::string victim_name;
  std::uint64_t oldest = ~std::uint64_t{0};
  for (std::size_t pi = 0; pi < partitions_.size(); ++pi) {
    Partition& p = *partitions_[pi];
    ReaderLock lock(p.mu);
    for (const auto& [name, tenant] : p.tenants) {
      const std::uint64_t used =
          tenant->last_used.load(std::memory_order_relaxed);
      if (used <= oldest) {
        oldest = used;
        victim_part = pi;
        victim_name = name;
      }
    }
  }
  if (victim_part == partitions_.size()) return false;

  // Phase 2: re-lock the victim's partition exclusively and evict. A
  // racing Delete may have beaten us to it — the caller's loop re-checks
  // the live count either way.
  Partition& p = *partitions_[victim_part];
  WriterLock lock(p.mu);
  TenantMap::iterator it = p.tenants.find(victim_name);
  if (it == p.tenants.end()) return true;
  std::shared_ptr<Tenant> tenant = std::move(it->second);
  p.tenants.erase(it);
  live_tenants_.fetch_sub(1, std::memory_order_relaxed);
  evictions_.fetch_add(1, std::memory_order_relaxed);
  // Recycle only when we hold the sole reference: in-flight operations on
  // the evicted tenant keep their own shared_ptr and must never observe
  // the sketch being moved out from under them.
  if (tenant.use_count() == 1) RecycleLocked(p, std::move(tenant));
  return true;
}

std::shared_ptr<SketchRegistry::Tenant> SketchRegistry::FindTenant(
    std::string_view name) const {
  const Partition& p = PartitionFor(name);
  ReaderLock lock(p.mu);
  TenantMap::const_iterator it = p.tenants.find(name);
  if (it == p.tenants.end()) return nullptr;
  it->second->last_used.store(
      use_clock_.fetch_add(1, std::memory_order_relaxed) + 1,
      std::memory_order_relaxed);
  return it->second;
}

Status SketchRegistry::Create(std::string_view name,
                              const TenantConfig& config) {
  if (!IsValidTenantName(name)) {
    return Status::InvalidArgument("invalid tenant name");
  }
  MRL_RETURN_IF_ERROR(ValidateConfig(config));
  if (!options_.allowed_kinds.empty()) {
    bool allowed = false;
    for (SketchKind kind : options_.allowed_kinds) {
      if (kind == config.kind) {
        allowed = true;
        break;
      }
    }
    if (!allowed) {
      return Status::FailedPrecondition(
          "backend '" + std::string(SketchKindName(config.kind)) +
          "' is disabled on this server");
    }
  }
  Partition& home = PartitionFor(name);

  const auto exists_error = [&](const Tenant& existing) {
    const SketchKind have = existing.config.kind;
    if (have != config.kind) {
      return Status::FailedPrecondition(
          "tenant already exists with kind '" +
          std::string(SketchKindName(have)) + "', requested '" +
          std::string(SketchKindName(config.kind)) + "'");
    }
    return Status::FailedPrecondition("tenant already exists");
  };

  // Existence pre-check so creating an existing tenant never evicts.
  {
    ReaderLock lock(home.mu);
    TenantMap::const_iterator it = home.tenants.find(name);
    if (it != home.tenants.end()) return exists_error(*it->second);
  }

  // Free a slot before building the sketch: the evicted tenant's sketch
  // lands in a free pool and — when it was in this partition and is
  // structurally compatible — serves this very create allocation-free.
  if (live_tenants_.load(std::memory_order_relaxed) >= options_.max_tenants) {
    WriterLock cross(cross_mu_);
    while (live_tenants_.load(std::memory_order_relaxed) >=
           options_.max_tenants) {
      if (!EvictGlobalLru()) break;
    }
  }

  {
    WriterLock lock(home.mu);
    TenantMap::iterator it = home.tenants.find(name);
    if (it != home.tenants.end()) return exists_error(*it->second);
    Result<std::unique_ptr<QuantileEstimator>> sketch =
        ObtainSketch(home, config);
    if (!sketch.ok()) return sketch.status();
    std::shared_ptr<Tenant> tenant =
        std::make_shared<Tenant>(config, std::move(sketch).value());
    tenant->last_used.store(
        use_clock_.fetch_add(1, std::memory_order_relaxed) + 1,
        std::memory_order_relaxed);
    home.tenants.emplace(std::string(name), std::move(tenant));
    live_tenants_.fetch_add(1, std::memory_order_relaxed);
  }

  // Concurrent creates can overshoot the cap transiently (each saw a free
  // slot); self-heal before returning so the cap holds at quiescence.
  if (live_tenants_.load(std::memory_order_relaxed) > options_.max_tenants) {
    WriterLock cross(cross_mu_);
    while (live_tenants_.load(std::memory_order_relaxed) >
           options_.max_tenants) {
      if (!EvictGlobalLru()) break;
    }
  }
  return Status::OK();
}

Result<std::uint64_t> SketchRegistry::AddBatch(std::string_view name,
                                               std::span<const Value> values) {
  std::shared_ptr<Tenant> tenant = FindTenant(name);
  if (tenant == nullptr) return Status::NotFound("unknown tenant");
  Tenant& t = *tenant;
  WriterLock lock(t.mu);
  t.sketch->AddBatch(values);
  return t.sketch->count();
}

Result<Value> SketchRegistry::Query(std::string_view name, double phi) const {
  std::shared_ptr<Tenant> tenant = FindTenant(name);
  if (tenant == nullptr) return Status::NotFound("unknown tenant");
  Tenant& t = *tenant;
  ReaderLock lock(t.mu);
  return t.sketch->Query(phi);
}

Status SketchRegistry::QueryMany(std::string_view name,
                                 std::span<const double> phis,
                                 std::vector<Value>* out) const {
  std::shared_ptr<Tenant> tenant = FindTenant(name);
  if (tenant == nullptr) return Status::NotFound("unknown tenant");
  // The sketch QueryMany APIs take a vector; stage the span through
  // thread-local scratch so repeated calls reuse capacity.
  thread_local std::vector<double> phi_scratch;
  phi_scratch.assign(phis.begin(), phis.end());
  Tenant& t = *tenant;
  ReaderLock lock(t.mu);
  Result<std::vector<Value>> answers = t.sketch->QueryMany(phi_scratch);
  if (!answers.ok()) return answers.status();
  *out = std::move(answers).value();
  return Status::OK();
}

Status SketchRegistry::Snapshot(std::string_view name,
                                std::vector<std::uint8_t>* blob) {
  std::shared_ptr<Tenant> tenant = FindTenant(name);
  if (tenant == nullptr) return Status::NotFound("unknown tenant");
  {
    Tenant& t = *tenant;
    ReaderLock lock(t.mu);
    BinaryWriter writer;
    EncodeTenantSketch(t, &writer);
    *blob = writer.Take();
  }
  if (!options_.checkpoint_path.empty()) {
    MRL_RETURN_IF_ERROR(CheckpointNow());
  }
  return Status::OK();
}

Status SketchRegistry::Delete(std::string_view name) {
  Partition& p = PartitionFor(name);
  WriterLock lock(p.mu);
  TenantMap::iterator it = p.tenants.find(name);
  if (it == p.tenants.end()) return Status::NotFound("unknown tenant");
  std::shared_ptr<Tenant> tenant = std::move(it->second);
  p.tenants.erase(it);
  live_tenants_.fetch_sub(1, std::memory_order_relaxed);
  if (tenant.use_count() == 1) RecycleLocked(p, std::move(tenant));
  return Status::OK();
}

Status SketchRegistry::FetchPartial(std::string_view name,
                                    std::vector<std::uint8_t>* blob) {
  std::shared_ptr<Tenant> tenant = FindTenant(name);
  if (tenant == nullptr) return Status::NotFound("unknown tenant");
  Tenant& t = *tenant;
  ReaderLock lock(t.mu);
  if (!t.sketch->SupportsPartialExport()) {
    return Status::FailedPrecondition(
        "backend '" + t.sketch->name() + "' does not support partial export");
  }
  PartialSummary summary;
  MRL_RETURN_IF_ERROR(t.sketch->ExportPartial(&summary));
  blob->clear();
  SerializePartialSummary(summary, blob);
  return Status::OK();
}

Status SketchRegistry::Install(std::string_view name,
                               const TenantConfig& config,
                               std::span<const std::uint8_t> blob) {
  if (!IsValidTenantName(name)) {
    return Status::InvalidArgument("invalid tenant name");
  }
  MRL_RETURN_IF_ERROR(ValidateConfig(config));
  // The blob is Snapshot's wire form: a u32-length-prefixed sketch blob,
  // same framing as a checkpoint entry. Unwrap it before Restore.
  BinaryReader reader(blob.data(), blob.size());
  std::vector<std::uint8_t> sketch_blob;
  MRL_RETURN_IF_ERROR(GetBlob(&reader, &sketch_blob));
  if (reader.Remaining() != 0) {
    return Status::InvalidArgument("install: trailing bytes after sketch");
  }
  // Create-or-replace: drop any existing instance (NotFound is fine), then
  // go through Create so the allowed-kinds policy, the eviction cap and
  // the free-pool recycling all apply to installed tenants too.
  Status deleted = Delete(name);
  if (!deleted.ok() && deleted.code() != StatusCode::kNotFound) {
    return deleted;
  }
  MRL_RETURN_IF_ERROR(Create(name, config));
  std::shared_ptr<Tenant> tenant = FindTenant(name);
  if (tenant == nullptr) {
    // A concurrent delete/evict raced the create; surface it as transient.
    return Status::Internal("tenant vanished during install");
  }
  Status restored;
  {
    Tenant& t = *tenant;
    WriterLock lock(t.mu);
    restored = t.sketch->Restore(std::span<const std::uint8_t>(sketch_blob));
  }
  if (!restored.ok()) {
    (void)Delete(name);
    return restored;
  }
  return Status::OK();
}

TenantStats SketchRegistry::Stats(std::string_view name) const {
  TenantStats stats;
  std::shared_ptr<Tenant> tenant = FindTenant(name);
  if (tenant == nullptr) return stats;
  Tenant& t = *tenant;
  ReaderLock lock(t.mu);
  stats.present = true;
  stats.config = t.config;
  stats.count = t.sketch->count();
  stats.memory_elements = t.sketch->MemoryElements();
  return stats;
}

RegistryStats SketchRegistry::GlobalStats() const {
  RegistryStats stats;
  // Directory pass and tenant pass deliberately do not nest: copy the
  // tenant handles out partition by partition, release each partition
  // lock, then visit every tenant under its own lock (lock order: never
  // hold a partition lock across sketch work; see registry.h).
  std::vector<std::shared_ptr<Tenant>> snapshot;
  for (const std::unique_ptr<Partition>& part : partitions_) {
    const Partition& p = *part;
    ReaderLock lock(p.mu);
    stats.num_tenants += p.tenants.size();
    snapshot.reserve(snapshot.size() + p.tenants.size());
    for (const auto& [name, tenant] : p.tenants) snapshot.push_back(tenant);
  }
  for (const std::shared_ptr<Tenant>& tenant : snapshot) {
    Tenant& t = *tenant;
    ReaderLock lock(t.mu);
    stats.total_count += t.sketch->count();
  }
  stats.evictions = evictions_.load(std::memory_order_relaxed);
  stats.recycled_creates = recycled_creates_.load(std::memory_order_relaxed);
  stats.checkpoints = checkpoints_.load(std::memory_order_relaxed);
  return stats;
}

std::size_t SketchRegistry::size() const {
  std::size_t total = 0;
  for (const std::unique_ptr<Partition>& part : partitions_) {
    const Partition& p = *part;
    ReaderLock lock(p.mu);
    total += p.tenants.size();
  }
  return total;
}

void SketchRegistry::EncodeTenantSketch(const Tenant& tenant,
                                        BinaryWriter* writer) {
  std::vector<std::uint8_t> blob = tenant.sketch->Serialize();
  writer->PutU32(static_cast<std::uint32_t>(blob.size()));
  for (std::uint8_t byte : blob) writer->PutU8(byte);
}

Result<std::unique_ptr<QuantileEstimator>> SketchRegistry::DecodeTenantSketch(
    const TenantConfig& config, BinaryReader* reader) {
  std::vector<std::uint8_t> blob;
  MRL_RETURN_IF_ERROR(GetBlob(reader, &blob));
  Result<std::unique_ptr<QuantileEstimator>> sketch = MakeSketch(config);
  if (!sketch.ok()) return sketch.status();
  MRL_RETURN_IF_ERROR(sketch.value()->Restore(
      std::span<const std::uint8_t>(blob.data(), blob.size())));
  return sketch;
}

Status SketchRegistry::CheckpointNow() {
  if (options_.checkpoint_path.empty()) return Status::OK();
  // cross_mu_ serializes whole-registry operations against each other
  // (two concurrent checkpoints would race on the temp file; a checkpoint
  // racing a recover would interleave half-swapped directories).
  WriterLock cross(cross_mu_);
  // Same two-pass shape as GlobalStats: directory handles out under the
  // partition locks, then the (slow) per-tenant serialization under
  // Tenant::mu only — a checkpoint never blocks lookups or other tenants.
  std::vector<std::pair<std::string, std::shared_ptr<Tenant>>> snapshot;
  for (const std::unique_ptr<Partition>& part : partitions_) {
    const Partition& p = *part;
    ReaderLock lock(p.mu);
    snapshot.reserve(snapshot.size() + p.tenants.size());
    for (const auto& [name, tenant] : p.tenants) {
      snapshot.emplace_back(name, tenant);
    }
  }
  BinaryWriter writer;
  writer.PutU32(kRegistryMagic);
  writer.PutU8(kRegistryVersion);
  writer.PutU64(snapshot.size());
  for (const auto& [name, tenant] : snapshot) {
    writer.PutU16(static_cast<std::uint16_t>(name.size()));
    for (char c : name) writer.PutU8(static_cast<std::uint8_t>(c));
    Tenant& t = *tenant;
    EncodeConfig(t.config, &writer);
    ReaderLock lock(t.mu);
    EncodeTenantSketch(t, &writer);
  }
  std::vector<std::uint8_t> bytes = writer.Take();
  const std::uint32_t crc = Crc32(bytes.data(), bytes.size());
  bytes.push_back(crc & 0xff);
  bytes.push_back((crc >> 8) & 0xff);
  bytes.push_back((crc >> 16) & 0xff);
  bytes.push_back((crc >> 24) & 0xff);
  MRL_RETURN_IF_ERROR(WriteFileAtomic(options_.checkpoint_path, bytes));
  checkpoints_.fetch_add(1, std::memory_order_relaxed);
  return Status::OK();
}

Status SketchRegistry::RecoverFromDisk() {
  if (options_.checkpoint_path.empty()) return Status::OK();
  std::vector<std::uint8_t> bytes;
  bool exists;
  MRL_RETURN_IF_ERROR(
      ReadFileBytes(options_.checkpoint_path, &bytes, &exists));
  if (!exists) return Status::OK();
  if (bytes.size() < 4) {
    return Status::InvalidArgument("registry checkpoint truncated");
  }
  const std::size_t body_len = bytes.size() - 4;
  const std::uint32_t stored_crc =
      static_cast<std::uint32_t>(bytes[body_len]) |
      (static_cast<std::uint32_t>(bytes[body_len + 1]) << 8) |
      (static_cast<std::uint32_t>(bytes[body_len + 2]) << 16) |
      (static_cast<std::uint32_t>(bytes[body_len + 3]) << 24);
  if (Crc32(bytes.data(), body_len) != stored_crc) {
    return Status::InvalidArgument("registry checkpoint CRC mismatch");
  }
  BinaryReader reader(bytes.data(), body_len);
  std::uint32_t magic;
  std::uint8_t version;
  std::uint64_t num_tenants;
  if (!reader.GetU32(&magic) || !reader.GetU8(&version) ||
      !reader.GetU64(&num_tenants)) {
    return reader.status();
  }
  if (magic != kRegistryMagic) {
    return Status::InvalidArgument("not a registry checkpoint");
  }
  if (version != kRegistryVersion) {
    return Status::InvalidArgument("unsupported registry checkpoint version");
  }
  if (num_tenants > kMaxCheckpointTenants) {
    return Status::InvalidArgument("registry checkpoint tenant count absurd");
  }
  // Decode into per-partition staging maps (tenants re-hash to partitions
  // here — the file is a flat list) and swap in only on full success.
  std::vector<TenantMap> recovered(partitions_.size());
  std::uint64_t recovered_count = 0;
  for (std::uint64_t i = 0; i < num_tenants; ++i) {
    std::uint16_t name_len;
    if (!reader.GetU16(&name_len)) return reader.status();
    std::string name;
    name.reserve(name_len);
    for (std::uint16_t c = 0; c < name_len; ++c) {
      std::uint8_t byte;
      if (!reader.GetU8(&byte)) return reader.status();
      name.push_back(static_cast<char>(byte));
    }
    if (!IsValidTenantName(name)) {
      return Status::InvalidArgument("registry checkpoint: bad tenant name");
    }
    TenantConfig config;
    MRL_RETURN_IF_ERROR(DecodeConfig(&reader, &config));
    Result<std::unique_ptr<QuantileEstimator>> sketch =
        DecodeTenantSketch(config, &reader);
    if (!sketch.ok()) return sketch.status();
    TenantMap& target = recovered[PartitionOf(name)];
    if (target.find(name) != target.end()) {
      return Status::InvalidArgument(
          "registry checkpoint: duplicate tenant name");
    }
    target.emplace(
        std::move(name),
        std::make_shared<Tenant>(config, std::move(sketch).value()));
    ++recovered_count;
  }
  if (!reader.AtEnd()) {
    return Status::InvalidArgument(
        "registry checkpoint: trailing bytes before CRC");
  }
  WriterLock cross(cross_mu_);
  for (std::size_t pi = 0; pi < partitions_.size(); ++pi) {
    Partition& p = *partitions_[pi];
    WriterLock lock(p.mu);
    p.tenants = std::move(recovered[pi]);
    for (const auto& [name, tenant] : p.tenants) {
      tenant->last_used.store(
          use_clock_.fetch_add(1, std::memory_order_relaxed) + 1,
          std::memory_order_relaxed);
    }
  }
  live_tenants_.store(recovered_count, std::memory_order_relaxed);
  return Status::OK();
}

}  // namespace server
}  // namespace mrl
