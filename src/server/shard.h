#ifndef MRLQUANT_SERVER_SHARD_H_
#define MRLQUANT_SERVER_SHARD_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <thread>
#include <unordered_map>
#include <vector>

#include "server/conn.h"
#include "server/event_loop.h"
#include "server/protocol.h"
#include "server/registry.h"
#include "util/status.h"
#include "util/thread_annotations.h"

namespace mrl {
namespace server {

/// One shared-nothing event-loop shard. A shard owns its epoll set, the
/// connections registered there, and one reusable request scratch; it
/// serves the registry partition with its own index, so once a connection
/// has been routed to its tenant's home shard, steady-state ADD_BATCH
/// crosses no lock that any other thread ever takes (the partition lock is
/// acquired uncontended; see the lock-order comment in registry.h).
///
/// Connections enter through Adopt() — an eventfd-woken MPSC inbox fed by
/// the acceptor (round-robin) and by peer shards (tenant-affinity
/// migration on a connection's first frame). Everything else runs on the
/// shard's own thread; no other member is shared.
class Shard {
 public:
  Shard(std::size_t index, SketchRegistry* registry,
        std::size_t write_buffer_cap);
  ~Shard();

  Shard(const Shard&) = delete;
  Shard& operator=(const Shard&) = delete;

  /// Peer array for tenant-affinity migration (index i = shard i ==
  /// registry partition i). Call once, after all shards exist, before
  /// Start().
  void SetPeers(std::span<const std::unique_ptr<Shard>> peers) {
    peers_ = peers;
  }

  Status Start();

  /// Two-phase shutdown so the server can stop all shards in parallel:
  /// RequestStop() wakes the loop, Join() reaps the thread and closes
  /// every remaining connection.
  void RequestStop();
  void Join();

  /// Hands a connection (with whatever bytes are already buffered) to this
  /// shard. Thread-safe; the MPSC inbox entry point. A connection adopted
  /// after shutdown began is closed immediately.
  void Adopt(std::unique_ptr<Conn> conn) MRLQUANT_EXCLUDES(inbox_mu_);

  std::size_t index() const { return index_; }

 private:
  void Loop() MRLQUANT_EXCLUDES(inbox_mu_);
  void DrainInbox() MRLQUANT_EXCLUDES(inbox_mu_);

  /// EPOLLIN: drain the socket, maybe migrate, process frames, flush.
  void OnReadable(Conn* conn);
  void OnWritable(Conn* conn);

  /// Decodes and executes every complete frame in the input buffer
  /// (request pipelining: one readiness event, many requests). Responses
  /// accumulate in the connection's write buffer.
  MRLQUANT_HOT void ProcessFrames(Conn* conn);

  /// Executes one request against the registry, appending the response
  /// frame to conn's write buffer.
  void HandleFrame(Conn* conn, MsgType type, const std::uint8_t* payload,
                   std::size_t payload_len);

  /// Routes an unrouted connection to its tenant's home shard once the
  /// first frame is fully buffered. Returns true when the connection was
  /// handed away (caller must not touch it again).
  bool MaybeMigrate(Conn* conn);

  /// Flushes pending responses; arms/disarms EPOLLOUT on partial/complete
  /// drain and finishes deferred closes.
  void FlushOrArm(Conn* conn);

  void CloseConn(Conn* conn);

  std::size_t index_;
  SketchRegistry* registry_;
  std::size_t write_buffer_cap_;
  std::span<const std::unique_ptr<Shard>> peers_;

  EventLoop loop_;
  std::thread thread_;
  std::atomic<bool> stopping_{false};

  /// MPSC handoff inbox; inbox_mu_ is a leaf lock — nothing else is
  /// acquired while it is held (in particular no registry lock), so it
  /// cannot participate in a lock-order cycle.
  Mutex inbox_mu_;
  std::vector<std::unique_ptr<Conn>> inbox_ MRLQUANT_GUARDED_BY(inbox_mu_);

  /// Shard-thread-only state below: connections keyed by fd, and request
  /// scratch reused across all of them (decoded doubles, QueryMany
  /// answers, Snapshot blob), so steady-state handling allocates nothing.
  std::unordered_map<int, std::unique_ptr<Conn>> conns_;
  std::vector<double> doubles_;
  std::vector<Value> answers_;
  std::vector<std::uint8_t> blob_;
};

}  // namespace server
}  // namespace mrl

#endif  // MRLQUANT_SERVER_SHARD_H_
