#include "server/event_loop.h"

#include <sys/eventfd.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

namespace mrl {
namespace server {

namespace {

Status StatusFromErrno(const char* what) {
  return Status::Internal(std::string(what) + ": " + std::strerror(errno));
}

}  // namespace

Result<EventLoop> EventLoop::Create() {
  const int epoll_fd = ::epoll_create1(EPOLL_CLOEXEC);
  if (epoll_fd < 0) return StatusFromErrno("epoll_create1");
  const int wake_fd = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  if (wake_fd < 0) {
    const Status status = StatusFromErrno("eventfd");
    ::close(epoll_fd);
    return status;
  }
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.ptr = nullptr;  // the null-data sentinel callers test for
  if (::epoll_ctl(epoll_fd, EPOLL_CTL_ADD, wake_fd, &ev) != 0) {
    const Status status = StatusFromErrno("epoll_ctl(wakeup)");
    ::close(wake_fd);
    ::close(epoll_fd);
    return status;
  }
  return EventLoop(epoll_fd, wake_fd);
}

EventLoop::~EventLoop() {
  if (wake_fd_ >= 0) ::close(wake_fd_);
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
}

EventLoop::EventLoop(EventLoop&& other) noexcept
    : epoll_fd_(std::exchange(other.epoll_fd_, -1)),
      wake_fd_(std::exchange(other.wake_fd_, -1)) {}

EventLoop& EventLoop::operator=(EventLoop&& other) noexcept {
  if (this != &other) {
    if (wake_fd_ >= 0) ::close(wake_fd_);
    if (epoll_fd_ >= 0) ::close(epoll_fd_);
    epoll_fd_ = std::exchange(other.epoll_fd_, -1);
    wake_fd_ = std::exchange(other.wake_fd_, -1);
  }
  return *this;
}

Status EventLoop::Add(int fd, std::uint32_t events, void* data) {
  epoll_event ev{};
  ev.events = events;
  ev.data.ptr = data;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) != 0) {
    return StatusFromErrno("epoll_ctl(ADD)");
  }
  return Status::OK();
}

Status EventLoop::Modify(int fd, std::uint32_t events, void* data) {
  epoll_event ev{};
  ev.events = events;
  ev.data.ptr = data;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, fd, &ev) != 0) {
    return StatusFromErrno("epoll_ctl(MOD)");
  }
  return Status::OK();
}

void EventLoop::Remove(int fd) {
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
}

int EventLoop::Wait(epoll_event* events, int max_events, int timeout_ms) {
  for (;;) {
    const int n = ::epoll_wait(epoll_fd_, events, max_events, timeout_ms);
    if (n >= 0) return n;
    if (errno == EINTR) continue;
    return -1;
  }
}

void EventLoop::Wake() {
  const std::uint64_t one = 1;
  // The counter saturating (EAGAIN) still leaves it readable: the waiter
  // is already due to wake. Short writes cannot happen on an eventfd.
  [[maybe_unused]] const ssize_t w =
      ::write(wake_fd_, &one, sizeof(one));
}

bool EventLoop::ConsumeWake() {
  std::uint64_t value = 0;
  const ssize_t r = ::read(wake_fd_, &value, sizeof(value));
  return r == static_cast<ssize_t>(sizeof(value)) && value != 0;
}

}  // namespace server
}  // namespace mrl
