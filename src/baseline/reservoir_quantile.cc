#include "baseline/reservoir_quantile.h"

#include <algorithm>
#include <cmath>

#include "util/math.h"
#include "util/sort.h"

namespace mrl {

Result<ReservoirQuantileSketch> ReservoirQuantileSketch::Create(
    const Options& options) {
  if (!(options.eps > 0.0) || options.eps >= 1.0 || !(options.delta > 0.0) ||
      options.delta >= 1.0) {
    return Status::InvalidArgument("eps and delta must be in (0, 1)");
  }
  const std::size_t capacity = static_cast<std::size_t>(
      HoeffdingSampleSize(options.eps, options.delta));
  return ReservoirQuantileSketch(
      ReservoirSampler(capacity, Random(options.seed), options.method),
      options.seed);
}

Result<Value> ReservoirQuantileSketch::Query(double phi) const {
  if (!(phi > 0.0) || phi > 1.0) {
    return Status::InvalidArgument("phi must be in (0, 1]");
  }
  const std::vector<Value>& sample = sampler_.sample();
  if (sample.empty()) {
    return Status::FailedPrecondition("no elements consumed yet");
  }
  std::vector<Value> sorted = sample;
  SortValues(sorted.data(), sorted.size());
  std::size_t pos = static_cast<std::size_t>(
      std::ceil(phi * static_cast<double>(sorted.size())));
  if (pos < 1) pos = 1;
  if (pos > sorted.size()) pos = sorted.size();
  return sorted[pos - 1];
}

}  // namespace mrl
