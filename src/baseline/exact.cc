#include "baseline/exact.h"

#include <cmath>

#include "util/sort.h"

namespace mrl {

Result<Value> ExactQuantileEstimator::Query(double phi) const {
  if (!(phi > 0.0) || phi > 1.0) {
    return Status::InvalidArgument("phi must be in (0, 1]");
  }
  if (values_.empty()) {
    return Status::FailedPrecondition("no elements consumed yet");
  }
  if (!sorted_) {
    // The exact baseline holds the entire dataset; its first query pays
    // one full sort, which the radix engine makes O(n) instead of
    // O(n log n) — this is the Table-1 comparison's setup cost.
    SortValues(values_.data(), values_.size());
    sorted_ = true;
  }
  std::size_t pos = static_cast<std::size_t>(
      std::ceil(phi * static_cast<double>(values_.size())));
  if (pos < 1) pos = 1;
  if (pos > values_.size()) pos = values_.size();
  return values_[pos - 1];
}

}  // namespace mrl
