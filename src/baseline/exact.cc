#include "baseline/exact.h"

#include <algorithm>
#include <cmath>

namespace mrl {

Result<Value> ExactQuantileEstimator::Query(double phi) const {
  if (!(phi > 0.0) || phi > 1.0) {
    return Status::InvalidArgument("phi must be in (0, 1]");
  }
  if (values_.empty()) {
    return Status::FailedPrecondition("no elements consumed yet");
  }
  if (!sorted_) {
    std::sort(values_.begin(), values_.end());
    sorted_ = true;
  }
  std::size_t pos = static_cast<std::size_t>(
      std::ceil(phi * static_cast<double>(values_.size())));
  if (pos < 1) pos = 1;
  if (pos > values_.size()) pos = values_.size();
  return values_[pos - 1];
}

}  // namespace mrl
