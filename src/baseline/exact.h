#ifndef MRLQUANT_BASELINE_EXACT_H_
#define MRLQUANT_BASELINE_EXACT_H_

#include <cstdint>
#include <vector>

#include "core/estimator.h"
#include "util/status.h"
#include "util/types.h"

namespace mrl {

/// Ground truth: stores the whole stream and answers quantiles exactly.
/// Memory is Theta(N) — the very thing the paper exists to avoid (Pohl's
/// N/2 lower bound for exact one-pass medians, Section 2.1) — but it
/// anchors every accuracy measurement in the tests and benches.
class ExactQuantileEstimator : public QuantileEstimator {
 public:
  ExactQuantileEstimator() = default;

  void Add(Value v) override {
    values_.push_back(v);
    sorted_ = false;
  }
  std::uint64_t count() const override { return values_.size(); }
  Result<Value> Query(double phi) const override;
  std::uint64_t MemoryElements() const override { return values_.size(); }
  std::string name() const override { return "exact"; }

  /// Drops the stored stream (capacity retained for reuse).
  void Reset() override {
    values_.clear();
    sorted_ = false;
  }

 private:
  mutable std::vector<Value> values_;
  mutable bool sorted_ = false;
};

}  // namespace mrl

#endif  // MRLQUANT_BASELINE_EXACT_H_
