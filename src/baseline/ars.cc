#include "baseline/ars.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "core/collapse_policy.h"
#include "core/output.h"
#include "util/logging.h"
#include "util/math.h"
#include "util/sort.h"

namespace mrl {

Result<ArsParams> SolveArs(double eps, std::uint64_t n) {
  if (!(eps > 0.0) || eps >= 1.0) {
    return Status::InvalidArgument("eps must be in (0, 1)");
  }
  if (n == 0) {
    return Status::InvalidArgument("n must be >= 1");
  }
  // For a fixed b, leaf capacity at height h is b + (h-1)(b-1) and the
  // error bound allows h <= 2 eps k - 1, so feasibility of k is monotone;
  // binary search the smallest feasible k per b.
  auto feasible = [&](int b, std::uint64_t k) {
    const double h =
        std::floor(2.0 * eps * static_cast<double>(k)) - 1.0;
    if (h < 1.0) return false;
    const double capacity =
        (static_cast<double>(b) + (h - 1.0) * static_cast<double>(b - 1)) *
        static_cast<double>(k);
    return capacity >= static_cast<double>(n);
  };
  ArsParams best;
  std::uint64_t best_memory = std::numeric_limits<std::uint64_t>::max();
  for (int b = 2; b <= 60; ++b) {
    std::uint64_t lo = 1;
    std::uint64_t hi = std::uint64_t{1} << 40;
    if (!feasible(b, hi)) continue;
    while (lo < hi) {
      const std::uint64_t mid = lo + (hi - lo) / 2;
      if (feasible(b, mid)) {
        hi = mid;
      } else {
        lo = mid + 1;
      }
    }
    const std::uint64_t memory = static_cast<std::uint64_t>(b) * lo;
    if (memory < best_memory) {
      best_memory = memory;
      best.b = b;
      best.k = static_cast<std::size_t>(lo);
      best.n = n;
    }
  }
  if (best_memory == std::numeric_limits<std::uint64_t>::max()) {
    return Status::ResourceExhausted("no feasible ARS parameters");
  }
  return best;
}

Result<ArsSketch> ArsSketch::Create(const Options& options) {
  ArsParams params;
  if (options.params.has_value()) {
    params = *options.params;
    if (params.b < 2 || params.k < 1) {
      return Status::InvalidArgument("params require b >= 2, k >= 1");
    }
  } else {
    Result<ArsParams> solved = SolveArs(options.eps, options.n);
    if (!solved.ok()) return solved.status();
    params = solved.value();
  }
  return ArsSketch(params);
}

ArsSketch::ArsSketch(const ArsParams& params)
    : params_(params),
      framework_(params.b, params.k,
                 MakeCollapsePolicy(CollapsePolicyKind::kCollapseAll)) {}

void ArsSketch::Add(Value v) {
  if (!filling_) {
    fill_slot_ = framework_.AcquireEmptySlot();
    framework_.buffer(fill_slot_).StartFill();
    filling_ = true;
  }
  Buffer& buf = framework_.buffer(fill_slot_);
  buf.Append(v);
  ++count_;
  if (buf.size() == buf.capacity()) {
    framework_.CommitFull(fill_slot_, /*weight=*/1, /*level=*/0);
    filling_ = false;
  }
}

ArsSketch::RunSnapshot ArsSketch::Snapshot() const {
  RunSnapshot snap;
  if (filling_) {
    const Buffer& buf = framework_.buffer(fill_slot_);
    if (!buf.values().empty()) {
      snap.partial_sorted = buf.values();
      SortValues(snap.partial_sorted.data(), snap.partial_sorted.size());
    }
  }
  snap.runs = framework_.FullBufferRuns();
  if (!snap.partial_sorted.empty()) {
    snap.runs.push_back(
        {snap.partial_sorted.data(), snap.partial_sorted.size(), Weight{1}});
  }
  return snap;
}

Result<Value> ArsSketch::Query(double phi) const {
  RunSnapshot snap = Snapshot();
  return WeightedQuantile(snap.runs, phi);
}

void ArsSketch::Reset() {
  framework_.Reset();
  count_ = 0;
  filling_ = false;
  fill_slot_ = 0;
}

}  // namespace mrl
