#ifndef MRLQUANT_BASELINE_ARS_H_
#define MRLQUANT_BASELINE_ARS_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "core/estimator.h"
#include "core/framework.h"
#include "util/status.h"
#include "util/types.h"

namespace mrl {

/// Parameters of the ARS-style baseline.
struct ArsParams {
  int b = 0;
  std::size_t k = 0;
  std::uint64_t n = 0;

  std::uint64_t MemoryElements() const {
    return static_cast<std::uint64_t>(b) * k;
  }
};

/// Sizes the Alsabti–Ranka–Singh-style baseline (collapse the entire pool
/// whenever it fills): the wide tree of height h consumes about
/// b + (h-1)(b-1) leaves, and the uniform tree bound needs h + 1 <= 2 eps k.
/// Minimizes b*k for a known N.
Result<ArsParams> SolveArs(double eps, std::uint64_t n);

/// The ARS-style algorithm realized as the framework instance with the
/// collapse-everything policy — the second known algorithm MRL98 subsumed.
class ArsSketch : public QuantileEstimator {
 public:
  struct Options {
    double eps = 0.01;
    std::uint64_t n = 0;
    std::optional<ArsParams> params;
  };

  static Result<ArsSketch> Create(const Options& options);

  ArsSketch(ArsSketch&&) = default;
  ArsSketch& operator=(ArsSketch&&) = default;

  void Add(Value v) override;
  std::uint64_t count() const override { return count_; }
  Result<Value> Query(double phi) const override;
  std::uint64_t MemoryElements() const override {
    return params_.MemoryElements();
  }
  std::string name() const override { return "ars"; }

  /// Returns the sketch to its freshly constructed state without releasing
  /// the buffer pool (the algorithm is deterministic; there is no seed).
  void Reset() override;

  const ArsParams& params() const { return params_; }
  const TreeStats& tree_stats() const { return framework_.stats(); }

 private:
  explicit ArsSketch(const ArsParams& params);

  struct RunSnapshot {
    std::vector<Value> partial_sorted;
    std::vector<WeightedRun> runs;
  };
  RunSnapshot Snapshot() const;

  ArsParams params_;
  CollapseFramework framework_;
  std::uint64_t count_ = 0;
  bool filling_ = false;
  std::size_t fill_slot_ = 0;
};

}  // namespace mrl

#endif  // MRLQUANT_BASELINE_ARS_H_
