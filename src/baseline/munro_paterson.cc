#include "baseline/munro_paterson.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "core/collapse_policy.h"
#include "core/output.h"
#include "util/logging.h"
#include "util/math.h"
#include "util/sort.h"

namespace mrl {

Result<MunroPatersonParams> SolveMunroPaterson(double eps, std::uint64_t n) {
  if (!(eps > 0.0) || eps >= 1.0) {
    return Status::InvalidArgument("eps must be in (0, 1)");
  }
  if (n == 0) {
    return Status::InvalidArgument("n must be >= 1");
  }
  MunroPatersonParams best;
  std::uint64_t best_memory = std::numeric_limits<std::uint64_t>::max();
  for (int b = 2; b <= 60; ++b) {
    // Error: height + 1 = b <= 2 eps k.
    std::uint64_t k = static_cast<std::uint64_t>(
        std::ceil(static_cast<double>(b) / (2.0 * eps)));
    // Capacity: 2^(b-1) * k >= n.
    if (b - 1 < 63) {
      const std::uint64_t leaves = std::uint64_t{1} << (b - 1);
      k = std::max(k, CeilDiv(n, leaves));
    }
    const std::uint64_t memory = static_cast<std::uint64_t>(b) * k;
    if (memory < best_memory) {
      best_memory = memory;
      best.b = b;
      best.k = static_cast<std::size_t>(k);
      best.n = n;
    }
  }
  return best;
}

Result<MunroPatersonSketch> MunroPatersonSketch::Create(
    const Options& options) {
  MunroPatersonParams params;
  if (options.params.has_value()) {
    params = *options.params;
    if (params.b < 2 || params.k < 1) {
      return Status::InvalidArgument("params require b >= 2, k >= 1");
    }
  } else {
    Result<MunroPatersonParams> solved =
        SolveMunroPaterson(options.eps, options.n);
    if (!solved.ok()) return solved.status();
    params = solved.value();
  }
  return MunroPatersonSketch(params);
}

MunroPatersonSketch::MunroPatersonSketch(const MunroPatersonParams& params)
    : params_(params),
      framework_(params.b, params.k,
                 MakeCollapsePolicy(CollapsePolicyKind::kMunroPaterson)) {}

void MunroPatersonSketch::Add(Value v) {
  if (!filling_) {
    fill_slot_ = framework_.AcquireEmptySlot();
    framework_.buffer(fill_slot_).StartFill();
    filling_ = true;
  }
  Buffer& buf = framework_.buffer(fill_slot_);
  buf.Append(v);
  ++count_;
  if (buf.size() == buf.capacity()) {
    framework_.CommitFull(fill_slot_, /*weight=*/1, /*level=*/0);
    filling_ = false;
  }
}

MunroPatersonSketch::RunSnapshot MunroPatersonSketch::Snapshot() const {
  RunSnapshot snap;
  if (filling_) {
    const Buffer& buf = framework_.buffer(fill_slot_);
    if (!buf.values().empty()) {
      snap.partial_sorted = buf.values();
      SortValues(snap.partial_sorted.data(), snap.partial_sorted.size());
    }
  }
  snap.runs = framework_.FullBufferRuns();
  if (!snap.partial_sorted.empty()) {
    snap.runs.push_back(
        {snap.partial_sorted.data(), snap.partial_sorted.size(), Weight{1}});
  }
  return snap;
}

Result<Value> MunroPatersonSketch::Query(double phi) const {
  RunSnapshot snap = Snapshot();
  return WeightedQuantile(snap.runs, phi);
}

void MunroPatersonSketch::Reset() {
  framework_.Reset();
  count_ = 0;
  filling_ = false;
  fill_slot_ = 0;
}

}  // namespace mrl
