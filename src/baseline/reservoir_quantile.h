#ifndef MRLQUANT_BASELINE_RESERVOIR_QUANTILE_H_
#define MRLQUANT_BASELINE_RESERVOIR_QUANTILE_H_

#include <cstdint>

#include "core/estimator.h"
#include "sampling/reservoir.h"
#include "util/status.h"
#include "util/types.h"

namespace mrl {

/// The folklore unknown-N baseline (Section 2.2): a reservoir sample of
/// s = O(eps^-2 log delta^-1) elements; the phi-quantile of the sample is
/// an eps-approximate phi-quantile of the stream with probability >= 1 -
/// delta. Its quadratic dependence on 1/eps is exactly what MRL99's
/// non-uniform scheme removes; the baseline-comparison bench shows the gap.
class ReservoirQuantileSketch : public QuantileEstimator {
 public:
  struct Options {
    double eps = 0.01;
    double delta = 1e-4;
    std::uint64_t seed = 1;
    ReservoirSampler::Method method = ReservoirSampler::Method::kAlgorithmX;
  };

  static Result<ReservoirQuantileSketch> Create(const Options& options);

  ReservoirQuantileSketch(ReservoirQuantileSketch&&) = default;
  ReservoirQuantileSketch& operator=(ReservoirQuantileSketch&&) = default;

  void Add(Value v) override { sampler_.Add(v); }
  std::uint64_t count() const override { return sampler_.count(); }
  Result<Value> Query(double phi) const override;
  std::uint64_t MemoryElements() const override {
    return sampler_.capacity();
  }
  std::string name() const override { return "reservoir"; }

 private:
  explicit ReservoirQuantileSketch(ReservoirSampler sampler)
      : sampler_(std::move(sampler)) {}

  ReservoirSampler sampler_;
};

}  // namespace mrl

#endif  // MRLQUANT_BASELINE_RESERVOIR_QUANTILE_H_
