#ifndef MRLQUANT_BASELINE_RESERVOIR_QUANTILE_H_
#define MRLQUANT_BASELINE_RESERVOIR_QUANTILE_H_

#include <cstdint>

#include "core/estimator.h"
#include "sampling/reservoir.h"
#include "util/status.h"
#include "util/types.h"

namespace mrl {

/// The folklore unknown-N baseline (Section 2.2): a reservoir sample of
/// s = O(eps^-2 log delta^-1) elements; the phi-quantile of the sample is
/// an eps-approximate phi-quantile of the stream with probability >= 1 -
/// delta. Its quadratic dependence on 1/eps is exactly what MRL99's
/// non-uniform scheme removes; the baseline-comparison bench shows the gap.
class ReservoirQuantileSketch : public QuantileEstimator {
 public:
  struct Options {
    double eps = 0.01;
    double delta = 1e-4;
    std::uint64_t seed = 1;
    ReservoirSampler::Method method = ReservoirSampler::Method::kAlgorithmX;
  };

  static Result<ReservoirQuantileSketch> Create(const Options& options);

  ReservoirQuantileSketch(ReservoirQuantileSketch&&) = default;
  ReservoirQuantileSketch& operator=(ReservoirQuantileSketch&&) = default;

  void Add(Value v) override { sampler_.Add(v); }
  std::uint64_t count() const override { return sampler_.count(); }
  Result<Value> Query(double phi) const override;
  std::uint64_t MemoryElements() const override {
    return sampler_.capacity();
  }
  std::string name() const override { return "reservoir"; }

  /// Returns the sketch to its freshly constructed state, reusing sample
  /// storage. Reset() replays the construction seed; Reset(seed) re-seeds.
  void Reset() override { sampler_.Reset(Random(seed_)); }
  void Reset(std::uint64_t seed) override {
    seed_ = seed;
    sampler_.Reset(Random(seed));
  }

 private:
  ReservoirQuantileSketch(ReservoirSampler sampler, std::uint64_t seed)
      : sampler_(std::move(sampler)), seed_(seed) {}

  ReservoirSampler sampler_;
  std::uint64_t seed_ = 1;  ///< construction seed, replayed by Reset()
};

}  // namespace mrl

#endif  // MRLQUANT_BASELINE_RESERVOIR_QUANTILE_H_
