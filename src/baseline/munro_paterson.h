#ifndef MRLQUANT_BASELINE_MUNRO_PATERSON_H_
#define MRLQUANT_BASELINE_MUNRO_PATERSON_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "core/estimator.h"
#include "core/framework.h"
#include "util/status.h"
#include "util/types.h"

namespace mrl {

/// Parameters of the Munro–Paterson baseline.
struct MunroPatersonParams {
  int b = 0;
  std::size_t k = 0;
  std::uint64_t n = 0;

  std::uint64_t MemoryElements() const {
    return static_cast<std::uint64_t>(b) * k;
  }
};

/// Sizes the Munro–Paterson single-pass algorithm for a known N: a binary
/// merge tree of height b-1 over 2^(b-1) leaves of k elements, so
/// 2^(b-1) * k >= n (capacity) and b <= 2*eps*k (error; height+1 = b).
/// Minimizes b*k. Space is Theta(eps^-1 log^2(eps*N)), the bound MRL98
/// attributes to [MP80].
Result<MunroPatersonParams> SolveMunroPaterson(double eps, std::uint64_t n);

/// The Munro–Paterson algorithm (Section 2.1 antecedent), realized as the
/// framework instance with binary collapses of the two lowest-level
/// buffers. Deterministic: no sampling, guarantee holds with probability 1
/// for streams of at most the declared length.
class MunroPatersonSketch : public QuantileEstimator {
 public:
  struct Options {
    double eps = 0.01;
    std::uint64_t n = 0;
    std::optional<MunroPatersonParams> params;
  };

  static Result<MunroPatersonSketch> Create(const Options& options);

  MunroPatersonSketch(MunroPatersonSketch&&) = default;
  MunroPatersonSketch& operator=(MunroPatersonSketch&&) = default;

  void Add(Value v) override;
  std::uint64_t count() const override { return count_; }
  Result<Value> Query(double phi) const override;
  std::uint64_t MemoryElements() const override {
    return params_.MemoryElements();
  }
  std::string name() const override { return "munro_paterson"; }

  /// Returns the sketch to its freshly constructed state without releasing
  /// the buffer pool (the algorithm is deterministic; there is no seed).
  void Reset() override;

  const MunroPatersonParams& params() const { return params_; }
  const TreeStats& tree_stats() const { return framework_.stats(); }

 private:
  explicit MunroPatersonSketch(const MunroPatersonParams& params);

  struct RunSnapshot {
    std::vector<Value> partial_sorted;
    std::vector<WeightedRun> runs;
  };
  RunSnapshot Snapshot() const;

  MunroPatersonParams params_;
  CollapseFramework framework_;
  std::uint64_t count_ = 0;
  bool filling_ = false;
  std::size_t fill_slot_ = 0;
};

}  // namespace mrl

#endif  // MRLQUANT_BASELINE_MUNRO_PATERSON_H_
