#ifndef MRLQUANT_ROUTER_HEALTH_H_
#define MRLQUANT_ROUTER_HEALTH_H_

#include <cstddef>
#include <vector>

#include "util/thread_annotations.h"

namespace mrl {
namespace router {

/// Backend liveness as the router believes it, modeled on the server
/// description state machine of production drivers: a backend starts
/// kUnknown, any successful round trip makes it kUp, the first failure of
/// an Up backend demotes to kSuspect (one bad RPC is not an outage), and
/// `fail_threshold` consecutive failures mark it kDown. Any success fully
/// resets the backend to kUp — there is no half-recovered state.
enum class BackendState { kUnknown, kUp, kSuspect, kDown };

const char* BackendStateName(BackendState state);

/// Shared scoreboard of backend states. Every RPC outcome — health-probe
/// pings and regular forwarded traffic alike — feeds the same tracker, so
/// a dead backend is usually noticed by the request that hits it, not only
/// by the next probe tick. Thread-safe.
class HealthTracker {
 public:
  HealthTracker(std::size_t num_backends, int fail_threshold);

  void ReportSuccess(int backend);
  void ReportFailure(int backend);

  BackendState state(int backend) const;

  /// Whether the router should still send traffic to `backend`: anything
  /// not kDown is usable (kUnknown and kSuspect get the benefit of the
  /// doubt so a single dropped packet cannot blackhole a backend).
  bool IsUsable(int backend) const;

 private:
  struct Entry {
    BackendState state = BackendState::kUnknown;
    int consecutive_failures = 0;
  };

  mutable Mutex mu_;
  std::vector<Entry> entries_ MRLQUANT_GUARDED_BY(mu_);
  const int fail_threshold_;
};

}  // namespace router
}  // namespace mrl

#endif  // MRLQUANT_ROUTER_HEALTH_H_
