#include "router/router.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <utility>

#include "core/partial.h"

namespace mrl {
namespace router {

namespace {

using server::Client;
using server::FrameView;
using server::MsgType;
using server::TenantConfig;

constexpr int kListenBacklog = 128;
/// Warm connections kept per backend. Beyond this, surplus connections are
/// simply closed on release — a burst dials extra sockets, steady state
/// reuses the pool.
constexpr std::size_t kMaxPooledConnections = 8;

/// Seed spacing for partitioned CREATE broadcast: each backend gets
/// config.seed + index * kSeedStride, so partitions sample independently
/// (identical seeds would correlate their Bernoulli draws) while remaining
/// reproducible from the tenant's one configured seed.
constexpr std::uint64_t kSeedStride = 0x9e3779b97f4a7c15ULL;

Status StatusFromErrno(const char* what) {
  return Status::Internal(std::string(what) + ": " + std::strerror(errno));
}

bool WriteFull(int fd, const std::uint8_t* buf, std::size_t n) {
  std::size_t sent = 0;
  while (sent < n) {
    const ssize_t w = ::send(fd, buf + sent, n - sent, MSG_NOSIGNAL);
    if (w < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    sent += static_cast<std::size_t>(w);
  }
  return true;
}

bool ReadFull(int fd, std::uint8_t* buf, std::size_t n) {
  std::size_t got = 0;
  while (got < n) {
    const ssize_t r = ::recv(fd, buf + got, n - got, 0);
    if (r == 0) return false;
    if (r < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    got += static_cast<std::size_t>(r);
  }
  return true;
}

/// Parses "unix:PATH" or dotted-quad "HOST:PORT" into the Backend fields.
Status ParseBackendAddress(const std::string& address, bool* is_unix,
                           std::string* path_or_host, std::uint16_t* port) {
  if (address.rfind("unix:", 0) == 0) {
    *is_unix = true;
    *path_or_host = address.substr(5);
    if (path_or_host->empty()) {
      return Status::InvalidArgument("empty unix socket path in '" + address +
                                     "'");
    }
    return Status::OK();
  }
  const std::size_t colon = address.rfind(':');
  if (colon == std::string::npos || colon == 0 ||
      colon + 1 == address.size()) {
    return Status::InvalidArgument(
        "backend address must be unix:PATH or HOST:PORT, got '" + address +
        "'");
  }
  char* end = nullptr;
  const long parsed = std::strtol(address.c_str() + colon + 1, &end, 10);
  if (end == nullptr || *end != '\0' || parsed < 1 || parsed > 65535) {
    return Status::InvalidArgument("bad port in backend address '" + address +
                                   "'");
  }
  *is_unix = false;
  *path_or_host = address.substr(0, colon);
  *port = static_cast<std::uint16_t>(parsed);
  return Status::OK();
}

}  // namespace

Router::Router(RouterOptions options)
    : options_(std::move(options)),
      ring_(options_.backends, options_.vnodes),
      health_(options_.backends.size(), options_.fail_threshold) {}

Result<std::unique_ptr<Router>> Router::Create(RouterOptions options) {
  if (options.backends.empty()) {
    return Status::InvalidArgument("router needs at least one backend");
  }
  if (options.uds_path.empty() && options.tcp_port < 0) {
    return Status::InvalidArgument("no listener configured");
  }
  if (options.replicate && options.backends.size() < 2) {
    return Status::InvalidArgument(
        "replication needs at least two backends");
  }
  std::unique_ptr<Router> router(new Router(std::move(options)));
  MRL_RETURN_IF_ERROR(router->Start());
  return router;
}

Status Router::Start() {
  backends_.reserve(options_.backends.size());
  for (const std::string& address : options_.backends) {
    auto backend = std::make_unique<Backend>();
    backend->address = address;
    MRL_RETURN_IF_ERROR(ParseBackendAddress(address, &backend->is_unix,
                                            &backend->path_or_host,
                                            &backend->port));
    backends_.push_back(std::move(backend));
  }

  if (!options_.uds_path.empty()) {
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (options_.uds_path.size() >= sizeof(addr.sun_path)) {
      return Status::InvalidArgument("unix socket path too long");
    }
    std::memcpy(addr.sun_path, options_.uds_path.c_str(),
                options_.uds_path.size() + 1);
    ::unlink(options_.uds_path.c_str());
    uds_listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (uds_listen_fd_ < 0) return StatusFromErrno("socket(AF_UNIX)");
    if (::bind(uds_listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
               sizeof(addr)) != 0 ||
        ::listen(uds_listen_fd_, kListenBacklog) != 0) {
      const Status status = StatusFromErrno("bind/listen(AF_UNIX)");
      ::close(uds_listen_fd_);
      uds_listen_fd_ = -1;
      return status;
    }
    bound_uds_path_ = options_.uds_path;
  }

  if (options_.tcp_port >= 0) {
    tcp_listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (tcp_listen_fd_ < 0) return StatusFromErrno("socket(AF_INET)");
    const int one = 1;
    ::setsockopt(tcp_listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<std::uint16_t>(options_.tcp_port));
    if (::bind(tcp_listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
               sizeof(addr)) != 0 ||
        ::listen(tcp_listen_fd_, kListenBacklog) != 0) {
      const Status status = StatusFromErrno("bind/listen(AF_INET)");
      ::close(tcp_listen_fd_);
      tcp_listen_fd_ = -1;
      return status;
    }
    sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    if (::getsockname(tcp_listen_fd_, reinterpret_cast<sockaddr*>(&bound),
                      &len) == 0) {
      tcp_port_ = ntohs(bound.sin_port);
    }
  }

  running_.store(true, std::memory_order_release);
  if (uds_listen_fd_ >= 0) {
    acceptors_.emplace_back(&Router::AcceptLoop, this, uds_listen_fd_);
  }
  if (tcp_listen_fd_ >= 0) {
    acceptors_.emplace_back(&Router::AcceptLoop, this, tcp_listen_fd_);
  }
  health_thread_ = std::thread(&Router::HealthLoop, this);
  return Status::OK();
}

Router::~Router() { Stop(); }

void Router::Stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) return;
  {
    MutexLock lock(health_mu_);
    health_stop_ = true;
  }
  health_cv_.notify_all();
  if (health_thread_.joinable()) health_thread_.join();

  // shutdown() wakes the blocking accept(2); the loops see running_ false
  // and exit. The fds are closed after the acceptors are gone.
  if (uds_listen_fd_ >= 0) ::shutdown(uds_listen_fd_, SHUT_RDWR);
  if (tcp_listen_fd_ >= 0) ::shutdown(tcp_listen_fd_, SHUT_RDWR);
  for (std::thread& t : acceptors_) {
    if (t.joinable()) t.join();
  }
  acceptors_.clear();
  if (uds_listen_fd_ >= 0) {
    ::close(uds_listen_fd_);
    uds_listen_fd_ = -1;
  }
  if (tcp_listen_fd_ >= 0) {
    ::close(tcp_listen_fd_);
    tcp_listen_fd_ = -1;
  }
  if (!bound_uds_path_.empty()) {
    ::unlink(bound_uds_path_.c_str());
    bound_uds_path_.clear();
  }

  // Wake every connection thread mid-read. Entries are removed from
  // conn_fds_ (under conns_mu_) before their fd is closed, so a shutdown
  // here can never hit a recycled descriptor.
  std::vector<std::thread> conns;
  {
    MutexLock lock(conns_mu_);
    for (const int fd : conn_fds_) ::shutdown(fd, SHUT_RDWR);
    conns.swap(conn_threads_);
  }
  for (std::thread& t : conns) {
    if (t.joinable()) t.join();
  }
}

void Router::AcceptLoop(int listen_fd) {
  while (running_.load(std::memory_order_acquire)) {
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      if (!running_.load(std::memory_order_acquire)) return;
      continue;  // transient accept failure (EMFILE, ECONNABORTED, ...)
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    MutexLock lock(conns_mu_);
    if (!running_.load(std::memory_order_acquire)) {
      ::close(fd);
      return;
    }
    conn_fds_.push_back(fd);
    conn_threads_.emplace_back(&Router::ServeConnection, this, fd);
  }
}

void Router::ServeConnection(int fd) {
  std::vector<std::uint8_t> body;
  std::vector<std::uint8_t> out;
  while (running_.load(std::memory_order_acquire)) {
    std::uint8_t prefix[4];
    if (!ReadFull(fd, prefix, sizeof(prefix))) break;
    const std::uint32_t body_len =
        static_cast<std::uint32_t>(prefix[0]) |
        (static_cast<std::uint32_t>(prefix[1]) << 8) |
        (static_cast<std::uint32_t>(prefix[2]) << 16) |
        (static_cast<std::uint32_t>(prefix[3]) << 24);
    if (body_len < server::kFrameHeaderSize - 4 ||
        body_len > server::kMaxPayload + server::kFrameHeaderSize - 4) {
      break;  // unframeable garbage; no reliable way to resynchronize
    }
    body.resize(body_len);
    if (!ReadFull(fd, body.data(), body_len)) break;
    out.clear();
    Result<FrameView> frame = server::DecodeFrameBody(body.data(), body_len);
    if (!frame.ok()) {
      // Attributable to no particular request type: echo kResponse, as the
      // backends do for undecodable frames.
      server::EncodeErrorResponse(MsgType::kResponse, frame.status(), &out);
    } else {
      HandleFrame(frame.value(), &out);
    }
    if (!WriteFull(fd, out.data(), out.size())) break;
  }
  {
    MutexLock lock(conns_mu_);
    conn_fds_.erase(std::remove(conn_fds_.begin(), conn_fds_.end(), fd),
                    conn_fds_.end());
  }
  ::close(fd);
}

// ---------------------------------------------------------------------------
// Backend RPC plumbing

Result<Client> Router::AcquireConnection(Backend& backend) {
  {
    MutexLock lock(backend.mu);
    if (!backend.pool.empty()) {
      Client client = std::move(backend.pool.back());
      backend.pool.pop_back();
      return client;
    }
  }
  Result<Client> client =
      backend.is_unix
          ? Client::ConnectUnix(backend.path_or_host, options_.rpc_timeout_ms)
          : Client::ConnectTcp(backend.path_or_host, backend.port,
                               options_.rpc_timeout_ms);
  if (!client.ok()) return client.status();
  MRL_RETURN_IF_ERROR(client.value().SetIoTimeout(options_.rpc_timeout_ms));
  return client;
}

template <typename Fn>
Status Router::WithBackend(int index, Fn&& rpc, bool* transport_failed) {
  if (transport_failed != nullptr) *transport_failed = false;
  Backend& backend = *backends_[static_cast<std::size_t>(index)];
  Result<Client> conn = AcquireConnection(backend);
  if (!conn.ok()) {
    health_.ReportFailure(index);
    if (transport_failed != nullptr) *transport_failed = true;
    return conn.status();
  }
  Client client = std::move(conn).value();
  const Status status = rpc(client);
  if (client.connected()) {
    // The backend answered (even if with its own error): the transport is
    // healthy.
    health_.ReportSuccess(index);
    MutexLock lock(backend.mu);
    if (backend.pool.size() < kMaxPooledConnections) {
      backend.pool.push_back(std::move(client));
    }
  } else {
    health_.ReportFailure(index);
    if (transport_failed != nullptr) *transport_failed = true;
  }
  return status;
}

int Router::ServingIndexOf(std::string_view name) const {
  const int owner = ring_.OwnerOf(name);
  if (!options_.replicate) return owner;
  MutexLock lock(tenants_mu_);
  auto it = tenants_.find(std::string(name));
  if (it == tenants_.end() || !it->second.failed_over) return owner;
  const int replica = ring_.ReplicaOf(name);
  return replica >= 0 ? replica : owner;
}

bool Router::failed_over(std::string_view name) const {
  MutexLock lock(tenants_mu_);
  auto it = tenants_.find(std::string(name));
  return it != tenants_.end() && it->second.failed_over;
}

bool Router::IsPartitioned(std::string_view name) const {
  for (const std::string& tenant : options_.partitioned) {
    if (tenant == name) return true;
  }
  return false;
}

template <typename Fn>
Status Router::ForwardWithFailover(std::string_view name, Fn&& rpc) {
  const int owner = ring_.OwnerOf(name);
  int replica = -1;
  bool known = false;
  bool use_replica = false;
  if (options_.replicate) {
    MutexLock lock(tenants_mu_);
    auto it = tenants_.find(std::string(name));
    if (it != tenants_.end() && !it->second.partitioned) {
      known = true;
      use_replica = it->second.failed_over;
      replica = ring_.ReplicaOf(name);
    }
  }
  const int serving = (use_replica && replica >= 0) ? replica : owner;
  bool transport_failed = false;
  const Status status = WithBackend(serving, rpc, &transport_failed);
  if (!transport_failed || use_replica || !known || replica < 0) {
    return status;
  }
  // The primary is unreachable and a warm replica exists: fail over
  // (sticky) and retry there once.
  {
    MutexLock lock(tenants_mu_);
    auto it = tenants_.find(std::string(name));
    if (it != tenants_.end()) it->second.failed_over = true;
  }
  return WithBackend(replica, rpc);
}

// ---------------------------------------------------------------------------
// Dispatch

void Router::HandleFrame(const FrameView& frame,
                         std::vector<std::uint8_t>* out) {
  switch (frame.type) {
    case MsgType::kPing: {
      // Answered by the router itself: PING probes the node it reaches.
      const Status status = server::DecodePing(frame.payload,
                                               frame.payload_len);
      if (!status.ok()) {
        return server::EncodeErrorResponse(frame.type, status, out);
      }
      return server::EncodeEmptyOk(frame.type, out);
    }
    case MsgType::kCreateSketch:
      return HandleCreate(frame, out);
    case MsgType::kAddBatch:
      return HandleAddBatch(frame, out);
    case MsgType::kQuery:
      return HandleQuery(frame, out);
    case MsgType::kQueryMulti:
      return HandleQueryMulti(frame, out);
    case MsgType::kSnapshot:
    case MsgType::kDelete:
    case MsgType::kFetchSummary:
      return HandleNameOp(frame, out);
    case MsgType::kStats:
      return HandleStats(frame, out);
    case MsgType::kRestore:
      return HandleRestore(frame, out);
    case MsgType::kResponse:
      break;
  }
  server::EncodeErrorResponse(
      frame.type, Status::InvalidArgument("unexpected response frame"), out);
}

void Router::HandleCreate(const FrameView& frame,
                          std::vector<std::uint8_t>* out) {
  Result<server::CreateSketchRequest> req =
      server::DecodeCreateSketch(frame.payload, frame.payload_len);
  if (!req.ok()) {
    return server::EncodeErrorResponse(frame.type, req.status(), out);
  }
  const std::string_view name = req.value().name;
  const TenantConfig& config = req.value().config;

  if (IsPartitioned(name)) {
    // Broadcast with derived per-backend seeds: every backend holds one
    // range partition of the tenant.
    for (std::size_t i = 0; i < backends_.size(); ++i) {
      TenantConfig part_config = config;
      part_config.seed = config.seed + static_cast<std::uint64_t>(i) *
                                           kSeedStride;
      const Status status =
          WithBackend(static_cast<int>(i), [&](Client& client) {
            return client.CreateSketch(name, part_config);
          });
      if (!status.ok()) {
        return server::EncodeErrorResponse(frame.type, status, out);
      }
    }
    MutexLock lock(tenants_mu_);
    TenantState& state = tenants_[std::string(name)];
    state.config = config;
    state.partitioned = true;
    return server::EncodeEmptyOk(frame.type, out);
  }

  const int owner = ring_.OwnerOf(name);
  const Status status = WithBackend(owner, [&](Client& client) {
    return client.CreateSketch(name, config);
  });
  if (!status.ok()) {
    return server::EncodeErrorResponse(frame.type, status, out);
  }
  bool replica_dirty = false;
  if (options_.replicate) {
    // Same config — and critically the same seed — on the replica, so both
    // copies make identical sampling decisions and stay byte-identical
    // under the mirrored write stream.
    const int replica = ring_.ReplicaOf(name);
    if (replica >= 0) {
      const Status mirrored = WithBackend(replica, [&](Client& client) {
        return client.CreateSketch(name, config);
      });
      // Any failure (dead replica, name collision from a stale copy) is
      // repaired by the health thread's SNAPSHOT→RESTORE resync.
      replica_dirty = !mirrored.ok();
    }
  }
  {
    MutexLock lock(tenants_mu_);
    TenantState& state = tenants_[std::string(name)];
    state.config = config;
    state.partitioned = false;
    state.failed_over = false;
    state.replica_dirty = replica_dirty;
    if (replica_dirty) ++state.dirty_gen;
  }
  server::EncodeEmptyOk(frame.type, out);
}

void Router::HandleAddBatch(const FrameView& frame,
                            std::vector<std::uint8_t>* out) {
  Result<server::AddBatchRequest> req =
      server::DecodeAddBatch(frame.payload, frame.payload_len);
  if (!req.ok()) {
    return server::EncodeErrorResponse(frame.type, req.status(), out);
  }
  const std::string_view name = req.value().name;
  std::vector<double> values;
  {
    const Status status = server::DecodeDoublesInto(
        req.value().values_le, req.value().count, /*reject_nan=*/true,
        &values);
    if (!status.ok()) {
      return server::EncodeErrorResponse(frame.type, status, out);
    }
  }

  if (IsPartitioned(name)) {
    // Deal the batch out in contiguous slices, one per usable backend; the
    // reply is the tenant's total count across all partitions.
    std::vector<int> usable;
    for (std::size_t i = 0; i < backends_.size(); ++i) {
      if (health_.IsUsable(static_cast<int>(i))) {
        usable.push_back(static_cast<int>(i));
      }
    }
    if (usable.empty()) {
      return server::EncodeErrorResponse(
          frame.type, Status::Internal("no usable backends"), out);
    }
    std::uint64_t total = 0;
    const std::size_t per = (values.size() + usable.size() - 1) /
                            usable.size();
    for (std::size_t slot = 0; slot < usable.size(); ++slot) {
      // Contiguous slices; trailing slots may get an empty one but are
      // still asked, so `total` covers every partition's count.
      const std::size_t begin = std::min(slot * per, values.size());
      const std::size_t end = std::min(values.size(), begin + per);
      const std::span<const Value> slice(values.data() + begin, end - begin);
      std::uint64_t count = 0;
      const Status status = WithBackend(usable[slot], [&](Client& client) {
        Result<std::uint64_t> r = client.AddBatch(name, slice);
        if (!r.ok()) return r.status();
        count = r.value();
        return Status::OK();
      });
      if (!status.ok()) {
        return server::EncodeErrorResponse(frame.type, status, out);
      }
      total += count;
    }
    return server::EncodeAddBatchOk(total, out);
  }

  const int owner = ring_.OwnerOf(name);
  int replica = -1;
  bool known = false;
  bool use_replica = false;
  if (options_.replicate) {
    MutexLock lock(tenants_mu_);
    auto it = tenants_.find(std::string(name));
    if (it != tenants_.end() && !it->second.partitioned) {
      known = true;
      use_replica = it->second.failed_over;
      replica = ring_.ReplicaOf(name);
    }
  }

  std::uint64_t count = 0;
  const auto add_rpc = [&](Client& client) {
    Result<std::uint64_t> r = client.AddBatch(name, std::span<const Value>(
                                                        values));
    if (!r.ok()) return r.status();
    count = r.value();
    return Status::OK();
  };

  const int serving = (use_replica && replica >= 0) ? replica : owner;
  bool transport_failed = false;
  Status status = WithBackend(serving, add_rpc, &transport_failed);

  if (transport_failed && !use_replica && known && replica >= 0) {
    // Primary died mid-write: promote the replica (sticky) and land the
    // batch there. The replica holds an identical sketch, so no data that
    // the client was acknowledged for is lost.
    {
      MutexLock lock(tenants_mu_);
      auto it = tenants_.find(std::string(name));
      if (it != tenants_.end()) it->second.failed_over = true;
    }
    status = WithBackend(replica, add_rpc);
    use_replica = true;
  }
  if (!status.ok()) {
    return server::EncodeErrorResponse(frame.type, status, out);
  }

  if (known && !use_replica && replica >= 0) {
    // Mirror to the replica; a miss only marks it dirty (the health thread
    // resyncs), it never fails the client's write.
    const Status mirrored = WithBackend(replica, [&](Client& client) {
      Result<std::uint64_t> r = client.AddBatch(
          name, std::span<const Value>(values));
      return r.ok() ? Status::OK() : r.status();
    });
    if (!mirrored.ok()) {
      MutexLock lock(tenants_mu_);
      auto it = tenants_.find(std::string(name));
      if (it != tenants_.end()) {
        it->second.replica_dirty = true;
        ++it->second.dirty_gen;
      }
    }
  }
  server::EncodeAddBatchOk(count, out);
}

Status Router::FanOutQuery(std::string_view name, std::span<const double> phis,
                           std::vector<double>* answers) {
  std::vector<PartialSummary> parts;
  Status last_error = Status::NotFound("tenant '" + std::string(name) +
                                       "' not found on any backend");
  for (std::size_t i = 0; i < backends_.size(); ++i) {
    if (!health_.IsUsable(static_cast<int>(i))) continue;
    std::vector<std::uint8_t> blob;
    const Status status = WithBackend(static_cast<int>(i), [&](Client& client) {
      return client.FetchSummary(name, &blob);
    });
    if (!status.ok()) {
      // A missing or unreachable partition degrades the answer instead of
      // failing the query; only an all-miss propagates.
      last_error = status;
      continue;
    }
    Result<PartialSummary> part = DeserializePartialSummary(
        std::span<const std::uint8_t>(blob.data(), blob.size()));
    if (!part.ok()) return part.status();
    parts.push_back(std::move(part).value());
  }
  if (parts.empty()) return last_error;

  std::uint64_t seed = 1;
  {
    MutexLock lock(tenants_mu_);
    auto it = tenants_.find(std::string(name));
    if (it != tenants_.end()) seed = it->second.config.seed;
  }
  Result<std::vector<Value>> merged = MergePartialQuantiles(
      parts, seed, std::vector<double>(phis.begin(), phis.end()));
  if (!merged.ok()) return merged.status();
  *answers = std::move(merged).value();
  return Status::OK();
}

void Router::HandleQuery(const FrameView& frame,
                         std::vector<std::uint8_t>* out) {
  Result<server::QueryRequest> req =
      server::DecodeQuery(frame.payload, frame.payload_len);
  if (!req.ok()) {
    return server::EncodeErrorResponse(frame.type, req.status(), out);
  }
  const std::string_view name = req.value().name;
  const double phi = req.value().phi;

  if (IsPartitioned(name)) {
    std::vector<double> answers;
    const double phis[1] = {phi};
    const Status status = FanOutQuery(name, phis, &answers);
    if (!status.ok()) {
      return server::EncodeErrorResponse(frame.type, status, out);
    }
    return server::EncodeQueryOk(answers[0], out);
  }

  double value = 0;
  const Status status = ForwardWithFailover(name, [&](Client& client) {
    Result<double> r = client.Query(name, phi);
    if (!r.ok()) return r.status();
    value = r.value();
    return Status::OK();
  });
  if (!status.ok()) {
    return server::EncodeErrorResponse(frame.type, status, out);
  }
  server::EncodeQueryOk(value, out);
}

void Router::HandleQueryMulti(const FrameView& frame,
                              std::vector<std::uint8_t>* out) {
  Result<server::QueryMultiRequest> req =
      server::DecodeQueryMulti(frame.payload, frame.payload_len);
  if (!req.ok()) {
    return server::EncodeErrorResponse(frame.type, req.status(), out);
  }
  const std::string_view name = req.value().name;
  std::vector<double> phis;
  {
    const Status status = server::DecodeDoublesInto(
        req.value().phis_le, req.value().count, /*reject_nan=*/true, &phis);
    if (!status.ok()) {
      return server::EncodeErrorResponse(frame.type, status, out);
    }
  }

  std::vector<double> answers;
  Status status;
  if (IsPartitioned(name)) {
    status = FanOutQuery(name, phis, &answers);
  } else {
    status = ForwardWithFailover(name, [&](Client& client) {
      answers.clear();
      return client.QueryMulti(name, phis, &answers);
    });
  }
  if (!status.ok()) {
    return server::EncodeErrorResponse(frame.type, status, out);
  }
  server::EncodeQueryMultiOk(answers, out);
}

void Router::HandleNameOp(const FrameView& frame,
                          std::vector<std::uint8_t>* out) {
  Result<server::NameRequest> req =
      server::DecodeNameRequest(frame.type, frame.payload, frame.payload_len);
  if (!req.ok()) {
    return server::EncodeErrorResponse(frame.type, req.status(), out);
  }
  const std::string_view name = req.value().name;

  if (frame.type == MsgType::kDelete) {
    if (IsPartitioned(name)) {
      Status first_error = Status::OK();
      for (std::size_t i = 0; i < backends_.size(); ++i) {
        if (!health_.IsUsable(static_cast<int>(i))) continue;
        const Status status =
            WithBackend(static_cast<int>(i), [&](Client& client) {
              return client.Delete(name);
            });
        if (!status.ok() && status.code() != StatusCode::kNotFound &&
            first_error.ok()) {
          first_error = status;
        }
      }
      MutexLock lock(tenants_mu_);
      tenants_.erase(std::string(name));
      if (!first_error.ok()) {
        return server::EncodeErrorResponse(frame.type, first_error, out);
      }
      return server::EncodeEmptyOk(frame.type, out);
    }
    const Status status = ForwardWithFailover(name, [&](Client& client) {
      return client.Delete(name);
    });
    if (options_.replicate) {
      // Best effort on the other copy; NotFound / dead replica are fine.
      const int replica = ring_.ReplicaOf(name);
      const int serving = ServingIndexOf(name);
      if (replica >= 0) {
        const int other = serving == replica ? ring_.OwnerOf(name) : replica;
        (void)WithBackend(other, [&](Client& client) {
          return client.Delete(name);
        });
      }
    }
    {
      MutexLock lock(tenants_mu_);
      tenants_.erase(std::string(name));
    }
    if (!status.ok()) {
      return server::EncodeErrorResponse(frame.type, status, out);
    }
    return server::EncodeEmptyOk(frame.type, out);
  }

  if (frame.type == MsgType::kFetchSummary && IsPartitioned(name)) {
    // Fan out and splice: partials share one k, so the union of their
    // buffer sets is itself a valid partial summary — this is what lets
    // routers stack hierarchically.
    std::vector<PartialSummary> parts;
    Status last_error = Status::NotFound(
        "tenant '" + std::string(name) + "' not found on any backend");
    for (std::size_t i = 0; i < backends_.size(); ++i) {
      if (!health_.IsUsable(static_cast<int>(i))) continue;
      std::vector<std::uint8_t> blob;
      const Status status =
          WithBackend(static_cast<int>(i), [&](Client& client) {
            return client.FetchSummary(name, &blob);
          });
      if (!status.ok()) {
        last_error = status;
        continue;
      }
      Result<PartialSummary> part = DeserializePartialSummary(
          std::span<const std::uint8_t>(blob.data(), blob.size()));
      if (!part.ok()) {
        return server::EncodeErrorResponse(frame.type, part.status(), out);
      }
      parts.push_back(std::move(part).value());
    }
    if (parts.empty()) {
      return server::EncodeErrorResponse(frame.type, last_error, out);
    }
    PartialSummary combined = std::move(parts.front());
    for (std::size_t i = 1; i < parts.size(); ++i) {
      if (parts[i].params.k != combined.params.k) {
        return server::EncodeErrorResponse(
            frame.type,
            Status::Internal("partitions disagree on buffer capacity k"),
            out);
      }
      if (parts[i].params.b > combined.params.b) {
        combined.params = parts[i].params;
      }
      combined.count += parts[i].count;
      for (ShippedBuffer& buf : parts[i].buffers) {
        combined.buffers.push_back(std::move(buf));
      }
    }
    std::vector<std::uint8_t> blob;
    SerializePartialSummary(combined, &blob);
    return server::EncodeFetchSummaryOk(blob, out);
  }

  if (frame.type == MsgType::kSnapshot && IsPartitioned(name)) {
    return server::EncodeErrorResponse(
        frame.type,
        Status::FailedPrecondition(
            "partitioned tenants have no single checkpoint; use "
            "FETCH_SUMMARY or snapshot the backends directly"),
        out);
  }

  std::vector<std::uint8_t> blob;
  const Status status = ForwardWithFailover(name, [&](Client& client) {
    blob.clear();
    return frame.type == MsgType::kSnapshot
               ? client.Snapshot(name, &blob)
               : client.FetchSummary(name, &blob);
  });
  if (!status.ok()) {
    return server::EncodeErrorResponse(frame.type, status, out);
  }
  if (frame.type == MsgType::kSnapshot) {
    server::EncodeSnapshotOk(blob, out);
  } else {
    server::EncodeFetchSummaryOk(blob, out);
  }
}

void Router::HandleStats(const FrameView& frame,
                         std::vector<std::uint8_t>* out) {
  Result<server::NameRequest> req =
      server::DecodeNameRequest(frame.type, frame.payload, frame.payload_len);
  if (!req.ok()) {
    return server::EncodeErrorResponse(frame.type, req.status(), out);
  }
  const std::string_view name = req.value().name;

  if (name.empty() || IsPartitioned(name)) {
    // Aggregate across the fleet. With replication the totals count each
    // mirrored copy once per holder — fleet-level occupancy, not distinct
    // data.
    server::StatsReply total;
    bool any = false;
    Status last_error = Status::Internal("no usable backends");
    for (std::size_t i = 0; i < backends_.size(); ++i) {
      if (!health_.IsUsable(static_cast<int>(i))) continue;
      server::StatsReply reply;
      const Status status =
          WithBackend(static_cast<int>(i), [&](Client& client) {
            Result<server::StatsReply> r = client.Stats(name);
            if (!r.ok()) return r.status();
            reply = r.value();
            return Status::OK();
          });
      if (!status.ok()) {
        last_error = status;
        continue;
      }
      any = true;
      total.num_tenants += reply.num_tenants;
      total.total_count += reply.total_count;
      if (reply.tenant_present) {
        total.tenant_present = true;
        total.tenant_kind = reply.tenant_kind;
        total.tenant_count += reply.tenant_count;
        total.tenant_memory_elements += reply.tenant_memory_elements;
      }
    }
    if (!any) {
      return server::EncodeErrorResponse(frame.type, last_error, out);
    }
    return server::EncodeStatsOk(total, out);
  }

  server::StatsReply reply;
  const Status status = ForwardWithFailover(name, [&](Client& client) {
    Result<server::StatsReply> r = client.Stats(name);
    if (!r.ok()) return r.status();
    reply = r.value();
    return Status::OK();
  });
  if (!status.ok()) {
    return server::EncodeErrorResponse(frame.type, status, out);
  }
  server::EncodeStatsOk(reply, out);
}

void Router::HandleRestore(const FrameView& frame,
                           std::vector<std::uint8_t>* out) {
  Result<server::RestoreRequest> req =
      server::DecodeRestore(frame.payload, frame.payload_len);
  if (!req.ok()) {
    return server::EncodeErrorResponse(frame.type, req.status(), out);
  }
  const std::string_view name = req.value().name;
  if (IsPartitioned(name)) {
    return server::EncodeErrorResponse(
        frame.type,
        Status::FailedPrecondition(
            "partitioned tenants cannot be restored through the router"),
        out);
  }
  const std::span<const std::uint8_t> blob(req.value().blob,
                                           req.value().blob_len);
  const TenantConfig config = req.value().config;
  const Status status = ForwardWithFailover(name, [&](Client& client) {
    return client.RestoreTenant(name, config, blob);
  });
  if (!status.ok()) {
    return server::EncodeErrorResponse(frame.type, status, out);
  }
  bool replica_dirty = false;
  bool use_replica = false;
  {
    MutexLock lock(tenants_mu_);
    auto it = tenants_.find(std::string(name));
    use_replica = it != tenants_.end() && it->second.failed_over;
  }
  if (options_.replicate && !use_replica) {
    const int replica = ring_.ReplicaOf(name);
    if (replica >= 0) {
      const Status mirrored = WithBackend(replica, [&](Client& client) {
        return client.RestoreTenant(name, config, blob);
      });
      replica_dirty = !mirrored.ok();
    }
  }
  {
    MutexLock lock(tenants_mu_);
    TenantState& state = tenants_[std::string(name)];
    state.config = config;
    state.partitioned = false;
    if (replica_dirty && !state.replica_dirty) {
      state.replica_dirty = true;
      ++state.dirty_gen;
    }
  }
  server::EncodeEmptyOk(frame.type, out);
}

// ---------------------------------------------------------------------------
// Health and replica resync

void Router::HealthLoop() {
  const auto interval = std::chrono::milliseconds(
      options_.health_interval_ms > 0 ? options_.health_interval_ms : 200);
  for (;;) {
    {
      MutexLock lock(health_mu_);
      health_cv_.wait_for(lock.native(), interval);
      if (health_stop_) return;
    }
    ProbeBackends();
    ResyncDirtyReplicas();
  }
}

void Router::ProbeBackends() {
  for (std::size_t i = 0; i < backends_.size(); ++i) {
    // WithBackend feeds the tracker on both outcomes; probing a down
    // backend is also how its recovery is noticed.
    (void)WithBackend(static_cast<int>(i),
                      [](Client& client) { return client.Ping(); });
  }
}

void Router::ResyncDirtyReplicas() {
  if (!options_.replicate) return;
  struct DirtyTenant {
    std::string name;
    TenantConfig config;
    std::uint64_t gen;
  };
  std::vector<DirtyTenant> dirty;
  {
    MutexLock lock(tenants_mu_);
    for (const auto& [name, state] : tenants_) {
      if (state.replica_dirty && !state.failed_over && !state.partitioned) {
        dirty.push_back({name, state.config, state.dirty_gen});
      }
    }
  }
  for (const DirtyTenant& tenant : dirty) {
    const int owner = ring_.OwnerOf(tenant.name);
    const int replica = ring_.ReplicaOf(tenant.name);
    if (replica < 0 || !health_.IsUsable(owner) ||
        !health_.IsUsable(replica)) {
      continue;
    }
    std::vector<std::uint8_t> blob;
    Status status = WithBackend(owner, [&](Client& client) {
      return client.Snapshot(tenant.name, &blob);
    });
    if (!status.ok()) continue;
    status = WithBackend(replica, [&](Client& client) {
      return client.RestoreTenant(tenant.name, tenant.config,
                                  std::span<const std::uint8_t>(blob));
    });
    if (!status.ok()) continue;
    MutexLock lock(tenants_mu_);
    auto it = tenants_.find(tenant.name);
    // Clear only the generation we shipped: a mirror that failed while the
    // checkpoint was in flight bumped the generation, and that marking must
    // win (the snapshot predates the write it records as missing).
    if (it != tenants_.end() && !it->second.failed_over &&
        it->second.dirty_gen == tenant.gen) {
      it->second.replica_dirty = false;
    }
  }
}

}  // namespace router
}  // namespace mrl
