#include "router/hash_ring.h"

#include <algorithm>

namespace mrl {
namespace router {

std::uint64_t HashRing::Hash(std::string_view s) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : s) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 0x100000001b3ULL;
  }
  // Finalizer (murmur3 fmix64): raw FNV-1a clusters for keys that differ
  // only in a trailing counter — exactly what vnode labels look like — and
  // clustered points hand one backend a huge arc of the ring.
  h ^= h >> 33;
  h *= 0xff51afd7ed558ccdULL;
  h ^= h >> 33;
  h *= 0xc4ceb9fe1a85ec53ULL;
  h ^= h >> 33;
  return h;
}

HashRing::HashRing(std::vector<std::string> backends, int vnodes)
    : backends_(std::move(backends)) {
  if (vnodes < 1) vnodes = 1;
  points_.reserve(backends_.size() * static_cast<std::size_t>(vnodes));
  for (std::size_t b = 0; b < backends_.size(); ++b) {
    for (int v = 0; v < vnodes; ++v) {
      std::string point = backends_[b];
      point.push_back('#');
      point += std::to_string(v);
      points_.push_back({Hash(point), static_cast<int>(b)});
    }
  }
  std::sort(points_.begin(), points_.end());
}

const HashRing::Point& HashRing::PointFor(std::uint64_t h) const {
  auto it = std::lower_bound(points_.begin(), points_.end(), Point{h, 0});
  if (it == points_.end()) it = points_.begin();  // wrap
  return *it;
}

int HashRing::OwnerOf(std::string_view name) const {
  return PointFor(Hash(name)).backend;
}

int HashRing::ReplicaOf(std::string_view name) const {
  if (backends_.size() < 2) return -1;
  const std::uint64_t h = Hash(name);
  auto it = std::lower_bound(points_.begin(), points_.end(), Point{h, 0});
  if (it == points_.end()) it = points_.begin();
  const int owner = it->backend;
  // Walk clockwise until a different backend's point shows up. Bounded by
  // the point count: with >= 2 backends some point belongs to another one.
  for (std::size_t steps = 0; steps < points_.size(); ++steps) {
    ++it;
    if (it == points_.end()) it = points_.begin();
    if (it->backend != owner) return it->backend;
  }
  return -1;
}

}  // namespace router
}  // namespace mrl
