#ifndef MRLQUANT_ROUTER_ROUTER_H_
#define MRLQUANT_ROUTER_ROUTER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <thread>
#include <unordered_map>
#include <vector>

#include "router/hash_ring.h"
#include "router/health.h"
#include "server/client.h"
#include "server/protocol.h"
#include "util/status.h"
#include "util/thread_annotations.h"

namespace mrl {
namespace router {

struct RouterOptions {
  /// Listeners; at least one must be configured. `tcp_port == 0` binds an
  /// ephemeral port (read it back with tcp_port()).
  std::string uds_path;
  int tcp_port = -1;

  /// Backend addresses, "unix:PATH" or dotted-quad "HOST:PORT". Order is
  /// the backend index used by HealthTracker and the test hooks.
  std::vector<std::string> backends;

  /// Mirror every write of a non-partitioned tenant to its ring replica
  /// (same seed at CREATE, so primary and replica hold byte-identical
  /// sketches) and fail over to the replica when the primary dies.
  bool replicate = false;

  /// Virtual nodes per backend on the consistent-hash ring.
  int vnodes = 64;

  /// Health-probe cadence and the failure budget before a backend is
  /// declared down (see router/health.h).
  int health_interval_ms = 200;
  int fail_threshold = 2;

  /// Per-RPC budget: bounds backend connect and every send/recv, so a hung
  /// backend surfaces as a failure within this window instead of wedging a
  /// router thread forever.
  int rpc_timeout_ms = 2000;

  /// Tenants range-partitioned across ALL backends instead of owned by
  /// one: CREATE broadcasts (per-backend derived seeds), ADD_BATCH splits
  /// each batch, and queries fan out FETCH_SUMMARY and merge the partial
  /// summaries with the Section 6 rules (core/partial.h).
  std::vector<std::string> partitioned;
};

/// Stateless distributed front for a fleet of mrlquantd backends. Speaks
/// the same wire protocol as the backends on its listeners, so existing
/// clients (mrlquant_client, bench drivers) point at the router unchanged;
/// tenant placement, §6 fan-out merging, replication, and failover all
/// happen behind it.
///
/// Threading: one acceptor thread per listener, one thread per client
/// connection (responses are written in request order, preserving the
/// protocol's pipelining contract), plus one health/resync thread. All
/// threads are joined by Stop()/the destructor.
class Router {
 public:
  static Result<std::unique_ptr<Router>> Create(RouterOptions options);

  ~Router();
  Router(const Router&) = delete;
  Router& operator=(const Router&) = delete;

  void Stop();

  /// Bound TCP port (the ephemeral one when options.tcp_port was 0), or 0
  /// when no TCP listener exists.
  std::uint16_t tcp_port() const { return tcp_port_; }

  std::size_t num_backends() const { return ring_.size(); }

  // -- test hooks -----------------------------------------------------------

  /// Ring owner of `name` (ignoring failover) — tests use it to find which
  /// backend to kill.
  int OwnerIndexOf(std::string_view name) const { return ring_.OwnerOf(name); }
  /// Ring replica of `name` (-1 with fewer than two backends).
  int ReplicaIndexOf(std::string_view name) const {
    return ring_.ReplicaOf(name);
  }
  BackendState backend_state(int index) const { return health_.state(index); }
  /// Whether `name` has been failed over to its replica.
  bool failed_over(std::string_view name) const;

 private:
  /// One backend: parsed address plus a small pool of warm connections.
  /// Acquire() prefers a pooled connection and dials under the RPC timeout
  /// otherwise; Release() returns still-healthy connections for reuse.
  struct Backend {
    std::string address;  ///< as configured
    bool is_unix = false;
    std::string path_or_host;
    std::uint16_t port = 0;
    Mutex mu;
    std::vector<server::Client> pool MRLQUANT_GUARDED_BY(mu);
  };

  /// Router-side soft state for a tenant created through this router. Lost
  /// on router restart by design (the router is stateless: placement is
  /// recomputed from the ring, and this map only accelerates
  /// replication/failover bookkeeping).
  struct TenantState {
    server::TenantConfig config;
    bool partitioned = false;
    /// Sticky: once the primary is declared dead mid-write, all traffic for
    /// this tenant serves from the replica — flapping primaries must not
    /// split the write stream across divergent copies.
    bool failed_over = false;
    /// The replica missed a write; the health thread resyncs it from the
    /// primary (SNAPSHOT → RESTORE) and clears this. `dirty_gen` bumps on
    /// every marking so a resync only clears the generation it actually
    /// shipped — a write that dirtied the replica mid-resync stays dirty.
    bool replica_dirty = false;
    std::uint64_t dirty_gen = 0;
  };

  explicit Router(RouterOptions options);
  Status Start();

  void AcceptLoop(int listen_fd);
  void ServeConnection(int fd);

  /// Decodes and dispatches one request frame, appending exactly one
  /// response frame to *out.
  void HandleFrame(const server::FrameView& frame,
                   std::vector<std::uint8_t>* out);

  void HandleCreate(const server::FrameView& frame,
                    std::vector<std::uint8_t>* out);
  void HandleAddBatch(const server::FrameView& frame,
                      std::vector<std::uint8_t>* out);
  void HandleQuery(const server::FrameView& frame,
                   std::vector<std::uint8_t>* out);
  void HandleQueryMulti(const server::FrameView& frame,
                        std::vector<std::uint8_t>* out);
  void HandleNameOp(const server::FrameView& frame,
                    std::vector<std::uint8_t>* out);
  void HandleStats(const server::FrameView& frame,
                   std::vector<std::uint8_t>* out);
  void HandleRestore(const server::FrameView& frame,
                     std::vector<std::uint8_t>* out);

  /// Fans QUERY/QUERY_MULTI out over a partitioned tenant: FETCH_SUMMARY
  /// from every usable backend, merge with MergePartialQuantiles.
  Status FanOutQuery(std::string_view name, std::span<const double> phis,
                     std::vector<double>* answers);

  /// Pooled connection to `backend`, dialing under the RPC timeout when
  /// the pool is empty.
  Result<server::Client> AcquireConnection(Backend& backend);

  /// Runs `rpc` against backend `index` on a pooled connection, feeding the
  /// health tracker: a connection that survives the call reports success
  /// and returns to the pool; a transport failure (connection closed by the
  /// Client, or a failed dial) reports failure, drops the connection, and
  /// sets *transport_failed. Returns the RPC's own status.
  template <typename Fn>
  Status WithBackend(int index, Fn&& rpc, bool* transport_failed = nullptr);

  /// Serving backend for a non-partitioned tenant: the ring owner, or the
  /// replica once the tenant failed over.
  int ServingIndexOf(std::string_view name) const;

  /// Forwards an RPC for tenant `name` to its serving backend; on a
  /// transport failure with replication enabled, fails the tenant over to
  /// its replica (sticky) and retries there once.
  template <typename Fn>
  Status ForwardWithFailover(std::string_view name, Fn&& rpc);

  void HealthLoop();
  void ProbeBackends();
  void ResyncDirtyReplicas();

  bool IsPartitioned(std::string_view name) const;

  RouterOptions options_;
  HashRing ring_;
  mutable HealthTracker health_;
  std::vector<std::unique_ptr<Backend>> backends_;

  mutable Mutex tenants_mu_;
  std::unordered_map<std::string, TenantState> tenants_
      MRLQUANT_GUARDED_BY(tenants_mu_);

  int uds_listen_fd_ = -1;
  int tcp_listen_fd_ = -1;
  std::uint16_t tcp_port_ = 0;
  std::string bound_uds_path_;

  std::atomic<bool> running_{false};
  std::vector<std::thread> acceptors_;

  std::thread health_thread_;
  Mutex health_mu_;
  std::condition_variable health_cv_;
  bool health_stop_ MRLQUANT_GUARDED_BY(health_mu_) = false;

  Mutex conns_mu_;
  std::vector<std::thread> conn_threads_ MRLQUANT_GUARDED_BY(conns_mu_);
  std::vector<int> conn_fds_ MRLQUANT_GUARDED_BY(conns_mu_);
};

}  // namespace router
}  // namespace mrl

#endif  // MRLQUANT_ROUTER_ROUTER_H_
