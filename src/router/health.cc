#include "router/health.h"

namespace mrl {
namespace router {

const char* BackendStateName(BackendState state) {
  switch (state) {
    case BackendState::kUnknown:
      return "unknown";
    case BackendState::kUp:
      return "up";
    case BackendState::kSuspect:
      return "suspect";
    case BackendState::kDown:
      return "down";
  }
  return "?";
}

HealthTracker::HealthTracker(std::size_t num_backends, int fail_threshold)
    : entries_(num_backends),
      fail_threshold_(fail_threshold < 1 ? 1 : fail_threshold) {}

void HealthTracker::ReportSuccess(int backend) {
  MutexLock lock(mu_);
  Entry& e = entries_[static_cast<std::size_t>(backend)];
  e.state = BackendState::kUp;
  e.consecutive_failures = 0;
}

void HealthTracker::ReportFailure(int backend) {
  MutexLock lock(mu_);
  Entry& e = entries_[static_cast<std::size_t>(backend)];
  ++e.consecutive_failures;
  if (e.consecutive_failures >= fail_threshold_) {
    e.state = BackendState::kDown;
  } else if (e.state == BackendState::kUp) {
    e.state = BackendState::kSuspect;
  }
}

BackendState HealthTracker::state(int backend) const {
  MutexLock lock(mu_);
  return entries_[static_cast<std::size_t>(backend)].state;
}

bool HealthTracker::IsUsable(int backend) const {
  MutexLock lock(mu_);
  return entries_[static_cast<std::size_t>(backend)].state !=
         BackendState::kDown;
}

}  // namespace router
}  // namespace mrl
