#ifndef MRLQUANT_ROUTER_HASH_RING_H_
#define MRLQUANT_ROUTER_HASH_RING_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace mrl {
namespace router {

/// Consistent-hash ring over a fixed backend set. Each backend contributes
/// `vnodes` points ("addr#i" hashed with FNV-1a) on a 64-bit circle; a
/// tenant name hashes to a point and is owned by the first backend point at
/// or after it (wrapping). Adding or removing one backend therefore moves
/// only ~1/N of tenants — the property that makes rolling a backend in or
/// out of the fleet cheap.
///
/// The ring is immutable after construction, so lookups need no lock and
/// every router thread (and every test) sees the same placement.
class HashRing {
 public:
  /// `backends` are opaque labels (the router passes addresses); order
  /// determines each backend's index but not its ring position. `vnodes`
  /// is clamped to at least 1.
  HashRing(std::vector<std::string> backends, int vnodes);

  /// Index of the backend owning `name`. Requires a non-empty ring.
  int OwnerOf(std::string_view name) const;

  /// Index of the replica for `name`: the next distinct backend clockwise
  /// from the owner. -1 when fewer than two backends exist.
  int ReplicaOf(std::string_view name) const;

  std::size_t size() const { return backends_.size(); }
  const std::string& backend(int index) const {
    return backends_[static_cast<std::size_t>(index)];
  }

  /// Stable FNV-1a, shared with tests asserting placement determinism.
  static std::uint64_t Hash(std::string_view s);

 private:
  struct Point {
    std::uint64_t hash;
    int backend;
    bool operator<(const Point& other) const { return hash < other.hash; }
  };

  /// First ring point at or after `h` (wrapping).
  const Point& PointFor(std::uint64_t h) const;

  std::vector<std::string> backends_;
  std::vector<Point> points_;  ///< sorted by hash
};

}  // namespace router
}  // namespace mrl

#endif  // MRLQUANT_ROUTER_HASH_RING_H_
