#include "cli_options.h"

#include <cerrno>
#include <cstdlib>
#include <cstring>

namespace mrl {
namespace cli {

namespace {

constexpr char kUsage[] =
    "usage: mrlquant_cli [--format=text|bin] [--eps=E] "
    "[--delta=D] [--phi=p1,p2,...] [--rank=v1,v2,...] "
    "[--seed=S] <file>";

}  // namespace

bool ParseDoubleList(const char* arg, std::vector<double>* out) {
  out->clear();
  std::string s(arg);
  std::size_t pos = 0;
  while (pos < s.size()) {
    std::size_t comma = s.find(',', pos);
    std::string token = s.substr(pos, comma == std::string::npos
                                          ? std::string::npos
                                          : comma - pos);
    char* end = nullptr;
    double v = std::strtod(token.c_str(), &end);
    if (end == token.c_str() || *end != '\0') return false;
    out->push_back(v);
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return !out->empty();
}

bool ParseArgs(int argc, char** argv, CliOptions* options,
               std::string* error) {
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    auto value_of = [&](const char* prefix) -> const char* {
      std::size_t len = std::strlen(prefix);
      return std::strncmp(arg, prefix, len) == 0 ? arg + len : nullptr;
    };
    if (const char* v = value_of("--format=")) {
      options->format = v;
    } else if (const char* v = value_of("--eps=")) {
      options->eps = std::atof(v);
    } else if (const char* v = value_of("--delta=")) {
      options->delta = std::atof(v);
    } else if (const char* v = value_of("--seed=")) {
      errno = 0;
      options->seed = std::strtoull(v, nullptr, 10);
    } else if (const char* v = value_of("--phi=")) {
      if (!ParseDoubleList(v, &options->phis)) {
        *error = std::string("malformed --phi list: ") + v;
        return false;
      }
    } else if (const char* v = value_of("--rank=")) {
      if (!ParseDoubleList(v, &options->ranks)) {
        *error = std::string("malformed --rank list: ") + v;
        return false;
      }
    } else if (std::strncmp(arg, "--", 2) == 0) {
      *error = std::string("unknown flag: ") + arg;
      return false;
    } else if (options->path.empty()) {
      options->path = arg;
    } else {
      *error = std::string("unexpected argument: ") + arg;
      return false;
    }
  }
  if (options->path.empty()) {
    *error = kUsage;
    return false;
  }
  if (options->format != "text" && options->format != "bin") {
    *error = "unknown format: " + options->format;
    return false;
  }
  return true;
}

}  // namespace cli
}  // namespace mrl
