// Positive fixture for mrlquant-no-alloc-in-hot-path: every construct
// below must be diagnosed. The driver asserts the check name appears and
// counts the findings.
#include <memory>
#include <vector>

#include "util/thread_annotations.h"

namespace fixture {

struct Widget {
  int x = 0;
};

MRLQUANT_HOT int* HotNew() {
  return new int(42);  // finding 1: operator new
}

MRLQUANT_HOT std::unique_ptr<Widget> HotMakeUnique() {
  return std::make_unique<Widget>();  // finding 2: factory allocation
}

MRLQUANT_HOT void HotPushBack(std::vector<double>* v) {
  v->push_back(1.0);  // finding 3: growth-prone member call via pointer
}

MRLQUANT_HOT void HotResize(std::vector<int>& v) {
  v.resize(100);  // finding 4: growth-prone member call via reference
}

// The annotation may live on a declaration while the allocation sits in an
// out-of-line definition — the redecl-chain walk must still fire.
MRLQUANT_HOT void HotDeclaredElsewhere(std::vector<int>& v);

void HotDeclaredElsewhere(std::vector<int>& v) {
  v.reserve(10);  // finding 5: hot via declaration's annotation
}

}  // namespace fixture
