// Positive fixture for mrlquant-guarded-mutex: every bare std mutex data
// member below must be diagnosed.
#include <mutex>
#include <shared_mutex>

namespace fixture {

class BareMutexHolder {
 private:
  std::mutex mu_;  // finding 1: invisible to -Wthread-safety
  int guarded_value_ = 0;
};

class BareSharedMutexHolder {
 private:
  std::shared_mutex map_mu_;  // finding 2
};

struct BareRecursive {
  std::recursive_mutex mu;  // finding 3
};

}  // namespace fixture
