// Negative fixture for mrlquant-guarded-mutex: nothing here may be
// diagnosed.
#include <mutex>
#include <shared_mutex>

#include "util/thread_annotations.h"

namespace fixture {

// The annotated wrappers from util/thread_annotations.h are the sanctioned
// mutex members: the capability attribute on the type is what makes
// -Wthread-safety see them.
class UsesWrappers {
 private:
  mrl::Mutex queue_mu_;
  mrl::SharedMutex map_mu_;
  int value_ MRLQUANT_GUARDED_BY(queue_mu_) = 0;
};

// A hand-rolled capability-annotated wrapper may embed the raw std mutex —
// that is exactly how mrl::Mutex itself is built, so the enclosing record's
// capability attribute exempts the field.
class MRLQUANT_CAPABILITY("mutex") CustomWrapper {
 public:
  void Lock() MRLQUANT_ACQUIRE() { mu_.lock(); }
  void Unlock() MRLQUANT_RELEASE() { mu_.unlock(); }

 private:
  std::mutex mu_;
};

// Locals and statics are not data members; the check is about shared state.
inline int LocalMutexIsFine() {
  std::mutex local;
  std::lock_guard<std::mutex> lock(local);
  return 1;
}

}  // namespace fixture
