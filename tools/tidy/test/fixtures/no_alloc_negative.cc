// Negative fixture for mrlquant-no-alloc-in-hot-path: nothing here may be
// diagnosed.
#include <cstddef>
#include <memory>
#include <vector>

#include "util/thread_annotations.h"

namespace fixture {

// Not hot: allocation is fine in setup/teardown code.
std::vector<double> ColdAllocates() {
  std::vector<double> v;
  v.push_back(1.0);
  v.resize(10);
  return v;
}

// Repo-owned types with growth-sounding method names are exempt — the
// check polices std containers only; repo types are themselves
// hot-annotated and audited at their own definitions.
struct Arena {
  void push_back(double) {}
  void resize(std::size_t) {}
};

MRLQUANT_HOT void HotUsesRepoType(Arena& a) {
  a.push_back(1.0);
  a.resize(8);
}

// The documented suppression idiom: warmed-arena growth with a justified
// NOLINTNEXTLINE is the sanctioned escape hatch.
MRLQUANT_HOT void HotWarmedArena(std::vector<double>& scratch,
                                 std::size_t n) {
  // NOLINTNEXTLINE(mrlquant-no-alloc-in-hot-path): arena — warmed to the
  // largest n seen, then recycled allocation-free.
  scratch.resize(n);
}

// Non-growing container reads must not fire.
MRLQUANT_HOT double HotReadsOnly(const std::vector<double>& v) {
  double sum = 0;
  for (double d : v) sum += d;
  return sum;
}

}  // namespace fixture
