// Positive fixture for mrlquant-use-sort-engine: every sort below is over
// doubles and outside the allowed file / Naive exemptions, so each must be
// diagnosed.
#include <algorithm>
#include <cstddef>
#include <vector>

namespace fixture {

void SortVectorOfDoubles(std::vector<double>& v) {
  std::sort(v.begin(), v.end());  // finding 1: vector<double> iterators
}

void SortRawDoublePointers(double* data, std::size_t n) {
  std::sort(data, data + n);  // finding 2: double* range
}

void StableSortDoubles(std::vector<double>& v) {
  std::stable_sort(v.begin(), v.end());  // finding 3: stable_sort too
}

void SortWithComparator(std::vector<double>& v) {
  // finding 4: a custom comparator does not exempt the call
  std::sort(v.begin(), v.end(), [](double a, double b) { return a > b; });
}

}  // namespace fixture
