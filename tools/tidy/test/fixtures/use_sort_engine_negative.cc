// Negative fixture for mrlquant-use-sort-engine: nothing here may be
// diagnosed.
#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace fixture {

// Integer sorts are out of the engine's scope.
void SortInts(std::vector<int>& v) { std::sort(v.begin(), v.end()); }

void SortUint64(std::vector<std::uint64_t>& v) {
  std::sort(v.begin(), v.end());
}

// Struct sorts (no double range) are out of scope even with a
// double-reading comparator key.
struct Slot {
  int index;
};
void SortSlots(std::vector<Slot>& v) {
  std::sort(v.begin(), v.end(),
            [](const Slot& a, const Slot& b) { return a.index < b.index; });
}

// *Naive reference implementations are the sanctioned exemption — they
// exist so differential tests can compare the engine against std::sort.
void SortDoublesNaive(double* data, std::size_t n) {
  std::sort(data, data + n);
}

void StableSortDoublesNaive(std::vector<double>& v) {
  std::stable_sort(v.begin(), v.end());
}

}  // namespace fixture
