#!/usr/bin/env bash
# Fixture tests for the mrlquant clang-tidy plugin (tools/tidy).
#
# Each fixture is compiled under exactly one custom check; the driver
# asserts the expected number of findings (positives) or zero findings
# (negatives). Expected counts are the `// finding N:` markers in the
# fixtures — update both together.
#
# Environment (set by the ctest registration in tools/tidy/CMakeLists.txt):
#   MRLQUANT_TIDY_PLUGIN   path to mrlquant_tidy_checks module
#   MRLQUANT_CLANG_TIDY    clang-tidy binary
#   MRLQUANT_REPO_ROOT     repo root (for -Isrc)
set -u -o pipefail

PLUGIN="${MRLQUANT_TIDY_PLUGIN:?MRLQUANT_TIDY_PLUGIN not set}"
CLANG_TIDY="${MRLQUANT_CLANG_TIDY:?MRLQUANT_CLANG_TIDY not set}"
ROOT="${MRLQUANT_REPO_ROOT:?MRLQUANT_REPO_ROOT not set}"
FIXTURES="$(cd "$(dirname "$0")/fixtures" && pwd)"

failures=0

# run_fixture <fixture.cc> <check-name> <expected-finding-count>
run_fixture() {
  local fixture="$1" check="$2" expected="$3"
  local out
  # || true: clang-tidy exits non-zero when it emits warnings; the
  # assertion below is on the diagnostic count, not the exit code.
  out="$("$CLANG_TIDY" --load "$PLUGIN" --quiet \
      "--checks=-*,${check}" \
      "${FIXTURES}/${fixture}" -- -std=c++20 "-I${ROOT}/src" 2>&1)" || true

  if grep -q "error:" <<<"$out"; then
    echo "FAIL ${fixture}: fixture failed to compile:"
    echo "$out"
    failures=$((failures + 1))
    return
  fi

  local count
  count="$(grep -c "\[${check}\]" <<<"$out" || true)"
  if [[ "$count" -ne "$expected" ]]; then
    echo "FAIL ${fixture}: expected ${expected} ${check} findings, got ${count}:"
    echo "$out"
    failures=$((failures + 1))
  else
    echo "PASS ${fixture}: ${count} ${check} finding(s)"
  fi
}

run_fixture no_alloc_positive.cc        mrlquant-no-alloc-in-hot-path 5
run_fixture no_alloc_negative.cc        mrlquant-no-alloc-in-hot-path 0
run_fixture use_sort_engine_positive.cc mrlquant-use-sort-engine      4
run_fixture use_sort_engine_negative.cc mrlquant-use-sort-engine      0
run_fixture guarded_mutex_positive.cc   mrlquant-guarded-mutex        3
run_fixture guarded_mutex_negative.cc   mrlquant-guarded-mutex        0

if [[ "$failures" -ne 0 ]]; then
  echo "${failures} fixture test(s) failed"
  exit 1
fi
echo "all tidy plugin fixture tests passed"
