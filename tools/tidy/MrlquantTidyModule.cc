//===--- MrlquantTidyModule.cc - mrlquant custom clang-tidy checks --------===//
//
// An out-of-tree clang-tidy module (loaded with `clang-tidy --load`) that
// enforces three repo-specific contracts the stock check set cannot express:
//
//   mrlquant-no-alloc-in-hot-path
//     Functions marked MRLQUANT_HOT (util/thread_annotations.h expands it to
//     __attribute__((annotate("mrlquant_hot"))) under Clang) are the
//     steady-state ingest/collapse/query paths; the arena design
//     (CollapseScratch / MergeScratch / SortScratch, see core/collapse.h)
//     promises they perform zero heap allocation once warmed. The check
//     flags operator new, std::make_unique / make_shared, the malloc
//     family, and growth-prone member calls (push_back, resize, ...) on
//     std containers inside such functions. Deliberate warm-up or
//     CHECK-bounded growth is suppressed with a justified
//     NOLINTNEXTLINE(mrlquant-no-alloc-in-hot-path) comment — the
//     suppression *is* the documentation (docs/engineering.md).
//
//   mrlquant-use-sort-engine
//     Every sort of doubles in src/ must go through the radix engine
//     (util/sort.h): it is faster past the cutoff, deterministic on the
//     two zeros, and arena-backed. Raw std::sort / std::stable_sort on
//     double ranges is flagged everywhere except the engine's own
//     implementation file and *Naive reference functions kept for
//     differential testing.
//
//   mrlquant-guarded-mutex
//     A bare std::mutex / std::shared_mutex data member is invisible to
//     Clang's -Wthread-safety analysis. Every mutex member must be one of
//     the annotated wrappers (mrl::Mutex / mrl::SharedMutex — types
//     carrying a capability attribute), so lock order and GUARDED_BY
//     contracts stay machine-checked.
//
// Target API: the stable ClangTidyCheck interface of LLVM 15-18. Built as a
// MODULE library with no clang libs linked; all symbols resolve from the
// host clang-tidy binary at --load time (see CMakeLists.txt here).
//
//===----------------------------------------------------------------------===//

#include "clang-tidy/ClangTidyCheck.h"
#include "clang-tidy/ClangTidyModule.h"
#include "clang-tidy/ClangTidyModuleRegistry.h"
#include "clang/AST/ASTContext.h"
#include "clang/AST/Attr.h"
#include "clang/ASTMatchers/ASTMatchFinder.h"
#include "clang/ASTMatchers/ASTMatchers.h"
#include "llvm/Support/Regex.h"

namespace clang::tidy::mrlquant {

using namespace clang::ast_matchers;

namespace {

/// True if any redeclaration of `fn` carries annotate("mrlquant_hot").
/// MRLQUANT_HOT normally sits on the declaration in the header while the
/// match lands on the definition, so the whole redecl chain is walked.
bool isHotFunction(const FunctionDecl* fn) {
  if (fn == nullptr) return false;
  for (const FunctionDecl* redecl : fn->redecls()) {
    for (const auto* attr : redecl->specific_attrs<AnnotateAttr>()) {
      if (attr->getAnnotation() == "mrlquant_hot") return true;
    }
  }
  // An out-of-line method definition does not redeclare the in-class
  // declaration; hop to the canonical declaration explicitly.
  const FunctionDecl* canon = fn->getCanonicalDecl();
  if (canon != nullptr && canon != fn) {
    for (const auto* attr : canon->specific_attrs<AnnotateAttr>()) {
      if (attr->getAnnotation() == "mrlquant_hot") return true;
    }
  }
  return false;
}

AST_MATCHER(FunctionDecl, isMrlquantHot) { return isHotFunction(&Node); }

/// True if the type (after stripping references/pointers and desugaring)
/// names a record in namespace std — the check only polices std
/// containers/smart-pointer factories; calls on repo types
/// (Buffer::Append, ...) are themselves hot-annotated and checked at their
/// own definition. The object expression of `p->push_back(v)` has pointer
/// type, hence the strip.
bool isStdRecordType(QualType qt) {
  if (qt.isNull()) return false;
  QualType canon = qt.getNonReferenceType().getCanonicalType();
  if (const auto* ptr = canon->getAs<PointerType>()) {
    canon = ptr->getPointeeType().getCanonicalType();
  }
  const auto* record = canon->getAsCXXRecordDecl();
  if (record == nullptr) return false;
  return record->isInStdNamespace();
}

/// LLVM-15-compatible StringRef suffix test (ends_with landed in 16,
/// endswith was removed later; spell it out to span both).
bool endsWith(StringRef s, StringRef suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

}  // namespace

//===----------------------------------------------------------------------===//
// mrlquant-no-alloc-in-hot-path
//===----------------------------------------------------------------------===//

class NoAllocInHotPathCheck : public ClangTidyCheck {
 public:
  NoAllocInHotPathCheck(StringRef Name, ClangTidyContext* Context)
      : ClangTidyCheck(Name, Context) {}

  bool isLanguageVersionSupported(const LangOptions& LangOpts) const override {
    return LangOpts.CPlusPlus;
  }

  void registerMatchers(ast_matchers::MatchFinder* Finder) override {
    const auto InHot = forFunction(functionDecl(isMrlquantHot()).bind("fn"));

    // operator new (scalar and array), including placement forms that still
    // allocate; `new (std::nothrow)` is allocation too.
    Finder->addMatcher(cxxNewExpr(InHot).bind("new"), this);

    // Allocation-by-factory: make_unique / make_shared, and the C heap.
    Finder->addMatcher(
        callExpr(InHot,
                 callee(functionDecl(hasAnyName(
                     "::std::make_unique", "::std::make_shared", "::malloc",
                     "::calloc", "::realloc", "::aligned_alloc", "::strdup"))))
            .bind("alloc_call"),
        this);

    // Growth-prone member calls on std containers. Each of these can
    // reallocate; on a warmed arena they are no-ops and carry a justified
    // NOLINTNEXTLINE, which is exactly the audit trail we want.
    Finder->addMatcher(
        cxxMemberCallExpr(
            InHot,
            callee(cxxMethodDecl(hasAnyName(
                "push_back", "emplace_back", "resize", "reserve", "insert",
                "emplace", "assign", "append", "push_front", "emplace_front"))),
            on(expr(hasType(qualType().bind("obj_type")))))
            .bind("grow_call"),
        this);
  }

  void check(const ast_matchers::MatchFinder::MatchResult& Result) override {
    const auto* Fn = Result.Nodes.getNodeAs<FunctionDecl>("fn");
    if (const auto* New = Result.Nodes.getNodeAs<CXXNewExpr>("new")) {
      diag(New->getBeginLoc(),
           "operator new in MRLQUANT_HOT function %0; hot paths must be "
           "allocation-free in steady state (use a warmed scratch arena, or "
           "suppress with a justified NOLINT if growth is provably bounded)")
          << Fn;
      return;
    }
    if (const auto* Call = Result.Nodes.getNodeAs<CallExpr>("alloc_call")) {
      diag(Call->getBeginLoc(),
           "heap allocation in MRLQUANT_HOT function %0; hot paths must be "
           "allocation-free in steady state")
          << Fn;
      return;
    }
    if (const auto* Grow =
            Result.Nodes.getNodeAs<CXXMemberCallExpr>("grow_call")) {
      const auto* ObjType = Result.Nodes.getNodeAs<QualType>("obj_type");
      if (ObjType == nullptr || !isStdRecordType(*ObjType)) return;
      diag(Grow->getBeginLoc(),
           "growth-prone container call in MRLQUANT_HOT function %0 may "
           "reallocate; prove it cannot (warmed arena / reserved capacity) "
           "and suppress with a justified "
           "NOLINTNEXTLINE(mrlquant-no-alloc-in-hot-path)")
          << Fn;
    }
  }
};

//===----------------------------------------------------------------------===//
// mrlquant-use-sort-engine
//===----------------------------------------------------------------------===//

class UseSortEngineCheck : public ClangTidyCheck {
 public:
  UseSortEngineCheck(StringRef Name, ClangTidyContext* Context)
      : ClangTidyCheck(Name, Context),
        AllowedFilesRegex_(Options.get("AllowedFilesRegex",
                                       "(^|/)src/util/sort\\.cc$")),
        AllowedFiles_(AllowedFilesRegex_) {}

  void storeOptions(ClangTidyOptions::OptionMap& Opts) override {
    Options.store(Opts, "AllowedFilesRegex", AllowedFilesRegex_);
  }

  bool isLanguageVersionSupported(const LangOptions& LangOpts) const override {
    return LangOpts.CPlusPlus;
  }

  void registerMatchers(ast_matchers::MatchFinder* Finder) override {
    Finder->addMatcher(
        callExpr(callee(functionDecl(
                     hasAnyName("::std::sort", "::std::stable_sort"))),
                 forFunction(functionDecl().bind("encl")))
            .bind("sort_call"),
        this);
  }

  void check(const ast_matchers::MatchFinder::MatchResult& Result) override {
    const auto* Call = Result.Nodes.getNodeAs<CallExpr>("sort_call");
    if (Call == nullptr || Call->getNumArgs() < 1) return;

    // Only sorts over double ranges belong to the engine; integer or
    // struct sorts (e.g. slot-index ordering) are out of scope.
    if (!rangeElementIsDouble(Call->getArg(0)->getType())) return;

    // The engine's own implementation file hosts the std::sort fallback.
    const SourceManager& SM = *Result.SourceManager;
    const StringRef File =
        SM.getFilename(SM.getExpansionLoc(Call->getBeginLoc()));
    if (AllowedFiles_.isValid() && AllowedFiles_.match(File)) return;

    // *Naive reference implementations are kept for differential testing.
    if (const auto* Encl = Result.Nodes.getNodeAs<FunctionDecl>("encl")) {
      if (Encl->getDeclName().isIdentifier() &&
          endsWith(Encl->getName(), "Naive")) {
        return;
      }
    }

    diag(Call->getBeginLoc(),
         "raw %0 on a double range; use the radix sort engine "
         "(SortValues/SortPairs in util/sort.h) — it is faster past the "
         "cutoff, arena-backed, and deterministic on -0.0/+0.0")
        << (isStableSort(Call) ? "std::stable_sort" : "std::sort");
  }

 private:
  static bool isStableSort(const CallExpr* Call) {
    const FunctionDecl* Callee = Call->getDirectCallee();
    return Callee != nullptr && Callee->getName() == "stable_sort";
  }

  /// Heuristic: the first argument of std::sort is an iterator; a `double*`
  /// pointee or an iterator whose value_type involves `double` (vector
  /// iterators desugar to double* or wrap it) marks a double-range sort.
  static bool rangeElementIsDouble(QualType qt) {
    QualType canon = qt.getCanonicalType();
    if (const auto* ptr = canon->getAs<PointerType>()) {
      return ptr->getPointeeType()
          .getCanonicalType()
          .getUnqualifiedType()
          ->isSpecificBuiltinType(BuiltinType::Double);
    }
    // Class-type iterators (__normal_iterator<double*, ...>,
    // _Deque_iterator<double, ...>): scan template arguments for a double
    // or double* parameter.
    if (const auto* spec =
            canon->getAs<TemplateSpecializationType>()) {
      canon = spec->desugar().getCanonicalType();
    }
    if (const auto* record = canon->getAsCXXRecordDecl()) {
      if (const auto* ctsd =
              llvm::dyn_cast<ClassTemplateSpecializationDecl>(record)) {
        for (const TemplateArgument& arg :
             ctsd->getTemplateArgs().asArray()) {
          if (arg.getKind() != TemplateArgument::Type) continue;
          QualType at = arg.getAsType().getCanonicalType();
          if (const auto* ap = at->getAs<PointerType>()) {
            at = ap->getPointeeType().getCanonicalType();
          }
          if (at.getUnqualifiedType()->isSpecificBuiltinType(
                  BuiltinType::Double)) {
            return true;
          }
        }
      }
    }
    return false;
  }

  const StringRef AllowedFilesRegex_;
  llvm::Regex AllowedFiles_;
};

//===----------------------------------------------------------------------===//
// mrlquant-guarded-mutex
//===----------------------------------------------------------------------===//

class GuardedMutexCheck : public ClangTidyCheck {
 public:
  GuardedMutexCheck(StringRef Name, ClangTidyContext* Context)
      : ClangTidyCheck(Name, Context) {}

  bool isLanguageVersionSupported(const LangOptions& LangOpts) const override {
    return LangOpts.CPlusPlus;
  }

  void registerMatchers(ast_matchers::MatchFinder* Finder) override {
    Finder->addMatcher(
        fieldDecl(hasType(cxxRecordDecl(hasAnyName(
                      "::std::mutex", "::std::shared_mutex",
                      "::std::recursive_mutex", "::std::timed_mutex",
                      "::std::shared_timed_mutex"))))
            .bind("field"),
        this);
  }

  void check(const ast_matchers::MatchFinder::MatchResult& Result) override {
    const auto* Field = Result.Nodes.getNodeAs<FieldDecl>("field");
    if (Field == nullptr) return;

    // Annotated wrapper types (mrl::Mutex / mrl::SharedMutex) legitimately
    // embed a std mutex: the enclosing record carries the capability
    // attribute that makes -Wthread-safety see it.
    const RecordDecl* Parent = Field->getParent();
    if (Parent != nullptr && Parent->hasAttr<CapabilityAttr>()) return;

    diag(Field->getLocation(),
         "bare %0 data member is invisible to -Wthread-safety; use "
         "mrl::Mutex / mrl::SharedMutex (util/thread_annotations.h) so the "
         "capability analysis can check lock order and GUARDED_BY contracts")
        << Field->getType();
  }
};

//===----------------------------------------------------------------------===//
// Module registration
//===----------------------------------------------------------------------===//

class MrlquantModule : public ClangTidyModule {
 public:
  void addCheckFactories(ClangTidyCheckFactories& CheckFactories) override {
    CheckFactories.registerCheck<NoAllocInHotPathCheck>(
        "mrlquant-no-alloc-in-hot-path");
    CheckFactories.registerCheck<UseSortEngineCheck>(
        "mrlquant-use-sort-engine");
    CheckFactories.registerCheck<GuardedMutexCheck>("mrlquant-guarded-mutex");
  }
};

static ClangTidyModuleRegistry::Add<MrlquantModule> X(
    "mrlquant-module", "mrlquant repo-specific checks.");

}  // namespace clang::tidy::mrlquant

// Pull the registry entry into any binary that links (or dlopens) this
// module; clang-tidy's --load path references this symbol convention.
volatile int MrlquantModuleAnchorSource = 0;
