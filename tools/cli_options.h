#ifndef MRLQUANT_TOOLS_CLI_OPTIONS_H_
#define MRLQUANT_TOOLS_CLI_OPTIONS_H_

#include <cstdint>
#include <string>
#include <vector>

namespace mrl {
namespace cli {

/// Parsed command line of mrlquant_cli. Separated from the binary so the
/// parser can be driven by tests and by the cli_args_fuzz harness.
struct CliOptions {
  std::string path;
  std::string format = "text";
  double eps = 0.01;
  double delta = 1e-4;
  std::vector<double> phis = {0.01, 0.25, 0.5, 0.75, 0.99};
  std::vector<double> ranks;
  std::uint64_t seed = 1;
};

/// Parses a comma-separated list of decimals ("0.5,0.9"). Returns false on
/// an empty list or any malformed token; `out` is clobbered either way.
bool ParseDoubleList(const char* arg, std::vector<double>* out);

/// Parses argv into `options`. On failure returns false and stores a
/// human-readable reason (or the usage string) in `error`; performs no I/O
/// and touches no files, whatever the input.
bool ParseArgs(int argc, char** argv, CliOptions* options,
               std::string* error);

}  // namespace cli
}  // namespace mrl

#endif  // MRLQUANT_TOOLS_CLI_OPTIONS_H_
