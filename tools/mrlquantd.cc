// mrlquantd: the multi-tenant quantile service daemon.
//
//   mrlquantd --uds=/tmp/mrlquant.sock
//             --checkpoint=/var/lib/mrlquant/registry.ckpt
//             --checkpoint-interval-ms=5000
//
// Serves the wire protocol of docs/wire_protocol.md over a Unix-domain
// socket and/or loopback TCP, on N shared-nothing event-loop shards
// (--shards, default one per core). Runs until SIGINT/SIGTERM, then shuts
// down cleanly (checkpointing once more when --checkpoint-on-stop is
// given). The main thread parks on a self-pipe read — like the event
// loops, it does zero periodic wakeups while idle (strace -c shows no
// poll/sleep churn at rest).

#include <unistd.h>

#include <cerrno>
#include <csignal>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "server/server.h"
#include "util/simd.h"

namespace {

/// Self-pipe: the signal handler writes one byte; main blocks on read.
/// (An eventfd would do, but a pipe write is the canonical async-signal-
/// safe wakeup and needs no extra headers here.)
int g_signal_pipe[2] = {-1, -1};

void HandleSignal(int) {
  const char byte = 1;
  // write(2) is async-signal-safe; a full pipe just means a wakeup is
  // already pending.
  [[maybe_unused]] const ssize_t w = write(g_signal_pipe[1], &byte, 1);
}

void Usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [--uds=PATH] [--port=N] [--shards=N]\n"
      "          [--max-tenants=N] [--checkpoint=PATH]\n"
      "          [--checkpoint-interval-ms=N] [--checkpoint-on-stop]\n"
      "          [--backends=LIST]\n"
      "At least one of --uds / --port is required.\n"
      "--shards sets the number of shared-nothing event-loop shards\n"
      "(default: one per core).\n"
      "--backends limits which sketch kinds CREATE_SKETCH may instantiate:\n"
      "a comma-separated subset of unknown_n,sharded,kll,det_reservoir\n"
      "(default: all).\n",
      argv0);
}

/// Parses a comma-separated backend list ("kll,det_reservoir") into kinds.
/// Exits with a diagnostic on an unrecognized name.
std::vector<mrl::server::SketchKind> ParseBackendList(const std::string& text) {
  std::vector<mrl::server::SketchKind> kinds;
  std::size_t start = 0;
  while (start <= text.size()) {
    std::size_t comma = text.find(',', start);
    if (comma == std::string::npos) comma = text.size();
    const std::string name = text.substr(start, comma - start);
    bool found = false;
    for (std::uint8_t k = 0; mrl::server::IsKnownSketchKind(k); ++k) {
      const auto kind = static_cast<mrl::server::SketchKind>(k);
      if (name == mrl::server::SketchKindName(kind)) {
        kinds.push_back(kind);
        found = true;
        break;
      }
    }
    if (!found) {
      std::fprintf(stderr,
                   "mrlquantd: bad --backends entry: '%s' (expected a subset "
                   "of unknown_n,sharded,kll,det_reservoir)\n",
                   name.c_str());
      std::exit(2);
    }
    start = comma + 1;
  }
  return kinds;
}

bool ParseFlag(const char* arg, const char* name, std::string* out) {
  const std::size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) != 0 || arg[len] != '=') return false;
  *out = arg + len + 1;
  return true;
}

bool ParseIntFlag(const char* arg, const char* name, long* out) {
  std::string text;
  if (!ParseFlag(arg, name, &text)) return false;
  char* end = nullptr;
  const long v = std::strtol(text.c_str(), &end, 10);
  if (end == nullptr || *end != '\0') {
    std::fprintf(stderr, "mrlquantd: bad integer for %s: %s\n", name,
                 text.c_str());
    std::exit(2);
  }
  *out = v;
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  mrl::server::ServerOptions options;
  for (int i = 1; i < argc; ++i) {
    std::string text;
    long value = 0;
    if (ParseFlag(argv[i], "--uds", &options.uds_path)) continue;
    if (ParseIntFlag(argv[i], "--port", &value)) {
      options.tcp_port = static_cast<std::uint16_t>(value);
      continue;
    }
    if (ParseIntFlag(argv[i], "--shards", &value)) {
      options.num_shards = static_cast<int>(value);
      continue;
    }
    if (ParseIntFlag(argv[i], "--max-tenants", &value)) {
      options.registry.max_tenants = static_cast<std::size_t>(value);
      continue;
    }
    if (ParseFlag(argv[i], "--checkpoint", &options.registry.checkpoint_path))
      continue;
    if (ParseFlag(argv[i], "--backends", &text)) {
      options.registry.allowed_kinds = ParseBackendList(text);
      continue;
    }
    if (ParseIntFlag(argv[i], "--checkpoint-interval-ms", &value)) {
      options.checkpoint_interval_ms = static_cast<int>(value);
      continue;
    }
    if (std::strcmp(argv[i], "--checkpoint-on-stop") == 0) {
      options.checkpoint_on_stop = true;
      continue;
    }
    if (std::strcmp(argv[i], "--help") == 0) {
      Usage(argv[0]);
      return 0;
    }
    std::fprintf(stderr, "mrlquantd: unknown argument: %s\n", argv[i]);
    Usage(argv[0]);
    return 2;
  }

  if (pipe(g_signal_pipe) != 0) {
    std::fprintf(stderr, "mrlquantd: pipe: %s\n", std::strerror(errno));
    return 1;
  }

  auto server = mrl::server::QuantileServer::Create(std::move(options));
  if (!server.ok()) {
    std::fprintf(stderr, "mrlquantd: %s\n",
                 server.status().message().c_str());
    return 1;
  }

  std::signal(SIGINT, HandleSignal);
  std::signal(SIGTERM, HandleSignal);
  std::fprintf(stderr,
               "mrlquantd: serving (pid %ld, %d shard%s, simd %s [%s])\n",
               static_cast<long>(getpid()), server.value()->num_shards(),
               server.value()->num_shards() == 1 ? "" : "s",
               mrl::simd::ActivePathName(),
               mrl::simd::CpuFeatureString().c_str());
  // Park until a signal arrives: one blocking read, zero periodic wakeups.
  char byte;
  while (read(g_signal_pipe[0], &byte, 1) < 0 && errno == EINTR) {
  }
  std::fprintf(stderr, "mrlquantd: shutting down\n");
  server.value()->Stop();
  return 0;
}
