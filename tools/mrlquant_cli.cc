// Command-line quantile computation over a file of values, in one pass and
// constant memory — the library's capabilities packaged for shell use.
//
// Usage:
//   mrlquant_cli [options] <file>
//     --format=text|bin     input: one decimal per line (default) or raw
//                           little-endian doubles (stream/file_stream.h)
//     --eps=<e>             rank error bound as a fraction of N (0.01)
//     --delta=<d>           failure probability (1e-4)
//     --phi=<p1,p2,...>     quantiles to report (0.01,0.25,0.5,0.75,0.99)
//     --rank=<v1,v2,...>    also report approximate normalized ranks of
//                           these values (selectivity of "x <= v")
//     --seed=<s>            RNG seed (1)
//
// Exit status: 0 on success, 1 on any error.

#include <cstdio>
#include <span>
#include <string>
#include <vector>

#include "cli_options.h"
#include "core/unknown_n.h"
#include "stream/file_stream.h"
#include "stream/text_stream.h"
#include "util/status.h"

namespace {

using mrl::cli::CliOptions;

template <typename Reader>
mrl::Status FeedAll(Reader* reader, mrl::UnknownNSketch* sketch) {
  // Chunked ingestion: read 64Ki values at a time and push them through
  // the sketch's batch path (identical answers to per-element Add).
  std::vector<mrl::Value> chunk(std::size_t{1} << 16);
  while (std::size_t got = reader->ReadBatch(chunk.data(), chunk.size())) {
    sketch->AddBatch(std::span<const mrl::Value>(chunk.data(), got));
  }
  return reader->status();
}

}  // namespace

int main(int argc, char** argv) {
  CliOptions options;
  std::string parse_error;
  if (!mrl::cli::ParseArgs(argc, argv, &options, &parse_error)) {
    std::fprintf(stderr, "%s\n", parse_error.c_str());
    return 1;
  }

  mrl::UnknownNOptions sketch_options;
  sketch_options.eps = options.eps;
  sketch_options.delta = options.delta;
  sketch_options.seed = options.seed;
  mrl::Result<mrl::UnknownNSketch> created =
      mrl::UnknownNSketch::Create(sketch_options);
  if (!created.ok()) {
    std::fprintf(stderr, "error: %s\n", created.status().ToString().c_str());
    return 1;
  }
  mrl::UnknownNSketch& sketch = created.value();

  mrl::Status read_status;
  if (options.format == "bin") {
    mrl::FileValueReader reader;
    read_status = reader.Open(options.path);
    if (read_status.ok()) read_status = FeedAll(&reader, &sketch);
  } else {
    mrl::TextValueReader reader;
    read_status = reader.Open(options.path);
    if (read_status.ok()) read_status = FeedAll(&reader, &sketch);
  }
  if (!read_status.ok()) {
    std::fprintf(stderr, "error reading %s: %s\n", options.path.c_str(),
                 read_status.ToString().c_str());
    return 1;
  }
  if (sketch.count() == 0) {
    std::fprintf(stderr, "error: %s holds no values\n",
                 options.path.c_str());
    return 1;
  }

  std::printf("# n=%llu eps=%g delta=%g memory_elements=%llu\n",
              static_cast<unsigned long long>(sketch.count()), options.eps,
              options.delta,
              static_cast<unsigned long long>(sketch.MemoryElements()));
  mrl::Result<std::vector<mrl::Value>> answers =
      sketch.QueryMany(options.phis);
  if (!answers.ok()) {
    std::fprintf(stderr, "error: %s\n", answers.status().ToString().c_str());
    return 1;
  }
  for (std::size_t i = 0; i < options.phis.size(); ++i) {
    std::printf("quantile\t%g\t%.17g\n", options.phis[i],
                answers.value()[i]);
  }
  for (double v : options.ranks) {
    mrl::Result<double> rank = sketch.RankOf(v);
    if (!rank.ok()) {
      std::fprintf(stderr, "error: %s\n", rank.status().ToString().c_str());
      return 1;
    }
    std::printf("rank\t%.17g\t%g\n", v, rank.value());
  }
  return 0;
}
