// mrlquant_client: command-line client for mrlquantd.
//
//   mrlquant_client --uds=/tmp/mrlquant.sock create latency --kind=sharded
//   seq 1 1000000 | mrlquant_client --uds=/tmp/mrlquant.sock add latency -
//   mrlquant_client --uds=/tmp/mrlquant.sock query latency 0.5
//   mrlquant_client --uds=/tmp/mrlquant.sock quantiles latency 0.5 0.9 0.99
//   mrlquant_client --uds=/tmp/mrlquant.sock snapshot latency out.ckpt
//   mrlquant_client --uds=/tmp/mrlquant.sock stats [latency]
//   mrlquant_client --uds=/tmp/mrlquant.sock delete latency

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "server/client.h"

namespace {

using mrl::Status;
using mrl::server::Client;
using mrl::server::SketchKind;
using mrl::server::StatsReply;
using mrl::server::TenantConfig;

void Usage() {
  std::fprintf(
      stderr,
      "usage: mrlquant_client (--uds=PATH | --host=IP --port=N)\n"
      "                       [--timeout-ms=N] CMD ...\n"
      "  create NAME [--kind=unknown|sharded|kll|dreservoir] [--eps=E]\n"
      "              [--delta=D]\n"
      "              [--shards=N] [--seed=S]\n"
      "  add NAME V...       ('-' reads whitespace-separated values "
      "from stdin)\n"
      "  query NAME PHI\n"
      "  quantiles NAME PHI...\n"
      "  snapshot NAME FILE\n"
      "  delete NAME\n"
      "  stats [NAME]\n"
      "  ping                (health probe; --timeout-ms bounds the wait,\n"
      "                       default 2000)\n");
}

int Fail(const Status& status) {
  std::fprintf(stderr, "mrlquant_client: %s\n", status.message().c_str());
  return 1;
}

double ParseDouble(const char* text) {
  char* end = nullptr;
  const double v = std::strtod(text, &end);
  if (end == nullptr || *end != '\0') {
    std::fprintf(stderr, "mrlquant_client: bad number: %s\n", text);
    std::exit(2);
  }
  return v;
}

bool FlagValue(const char* arg, const char* name, std::string* out) {
  const std::size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) != 0 || arg[len] != '=') return false;
  *out = arg + len + 1;
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::string uds, host = "127.0.0.1", port_text;
  int timeout_ms = -1;
  int i = 1;
  for (; i < argc; ++i) {
    std::string v;
    if (FlagValue(argv[i], "--uds", &uds)) continue;
    if (FlagValue(argv[i], "--host", &host)) continue;
    if (FlagValue(argv[i], "--port", &port_text)) continue;
    if (FlagValue(argv[i], "--timeout-ms", &v)) {
      timeout_ms = std::atoi(v.c_str());
      continue;
    }
    break;
  }
  if (i >= argc) {
    Usage();
    return 2;
  }
  const std::string cmd_peek = argv[i];
  // ping is a liveness probe: never hang on a wedged server, so a bounded
  // wait is the default rather than opt-in.
  if (cmd_peek == "ping" && timeout_ms < 0) timeout_ms = 2000;

  mrl::Result<Client> connected =
      !uds.empty()
          ? Client::ConnectUnix(uds, timeout_ms)
          : Client::ConnectTcp(
                host,
                static_cast<std::uint16_t>(
                    port_text.empty() ? 0 : std::atoi(port_text.c_str())),
                timeout_ms);
  if (!connected.ok()) return Fail(connected.status());
  Client client = std::move(connected).value();
  if (timeout_ms > 0) {
    const Status status = client.SetIoTimeout(timeout_ms);
    if (!status.ok()) return Fail(status);
  }

  const std::string cmd = argv[i++];
  if (cmd == "ping") {
    const Status status = client.Ping();
    if (!status.ok()) return Fail(status);
    std::printf("pong\n");
    return 0;
  }
  if (cmd == "create") {
    if (i >= argc) {
      Usage();
      return 2;
    }
    const std::string name = argv[i++];
    TenantConfig config;
    for (; i < argc; ++i) {
      std::string v;
      if (FlagValue(argv[i], "--kind", &v)) {
        if (v == "unknown" || v == "unknown_n") {
          config.kind = SketchKind::kUnknownN;
        } else if (v == "sharded") {
          config.kind = SketchKind::kSharded;
        } else if (v == "kll") {
          config.kind = SketchKind::kKll;
        } else if (v == "dreservoir" || v == "det_reservoir") {
          config.kind = SketchKind::kDetReservoir;
        } else {
          std::fprintf(stderr,
                       "mrlquant_client: bad --kind: %s (expected unknown, "
                       "sharded, kll or dreservoir)\n",
                       v.c_str());
          return 2;
        }
      } else if (FlagValue(argv[i], "--eps", &v)) {
        config.eps = ParseDouble(v.c_str());
      } else if (FlagValue(argv[i], "--delta", &v)) {
        config.delta = ParseDouble(v.c_str());
      } else if (FlagValue(argv[i], "--shards", &v)) {
        config.num_shards = std::atoi(v.c_str());
      } else if (FlagValue(argv[i], "--seed", &v)) {
        config.seed = static_cast<std::uint64_t>(
            std::strtoull(v.c_str(), nullptr, 10));
      } else {
        std::fprintf(stderr, "mrlquant_client: unknown flag: %s\n", argv[i]);
        return 2;
      }
    }
    const Status status = client.CreateSketch(name, config);
    if (!status.ok()) return Fail(status);
    std::printf("created %s\n", name.c_str());
    return 0;
  }

  if (cmd == "add") {
    if (i >= argc) {
      Usage();
      return 2;
    }
    const std::string name = argv[i++];
    std::vector<double> values;
    if (i < argc && std::strcmp(argv[i], "-") == 0) {
      double v;
      while (std::cin >> v) values.push_back(v);
    } else {
      for (; i < argc; ++i) values.push_back(ParseDouble(argv[i]));
    }
    if (values.empty()) {
      std::fprintf(stderr, "mrlquant_client: no values to add\n");
      return 2;
    }
    mrl::Result<std::uint64_t> count = client.AddBatch(name, values);
    if (!count.ok()) return Fail(count.status());
    std::printf("count=%llu\n",
                static_cast<unsigned long long>(count.value()));
    return 0;
  }

  if (cmd == "query") {
    if (i + 1 >= argc) {
      Usage();
      return 2;
    }
    mrl::Result<double> answer =
        client.Query(argv[i], ParseDouble(argv[i + 1]));
    if (!answer.ok()) return Fail(answer.status());
    std::printf("%.17g\n", answer.value());
    return 0;
  }

  if (cmd == "quantiles") {
    if (i + 1 >= argc) {
      Usage();
      return 2;
    }
    const std::string name = argv[i++];
    std::vector<double> phis;
    for (; i < argc; ++i) phis.push_back(ParseDouble(argv[i]));
    std::vector<mrl::Value> answers;
    const Status status = client.QueryMulti(name, phis, &answers);
    if (!status.ok()) return Fail(status);
    for (std::size_t j = 0; j < answers.size(); ++j) {
      std::printf("phi=%g value=%.17g\n", phis[j], answers[j]);
    }
    return 0;
  }

  if (cmd == "snapshot") {
    if (i + 1 >= argc) {
      Usage();
      return 2;
    }
    std::vector<std::uint8_t> blob;
    const Status status = client.Snapshot(argv[i], &blob);
    if (!status.ok()) return Fail(status);
    std::ofstream out(argv[i + 1], std::ios::binary);
    out.write(reinterpret_cast<const char*>(blob.data()),
              static_cast<std::streamsize>(blob.size()));
    if (!out) {
      std::fprintf(stderr, "mrlquant_client: cannot write %s\n", argv[i + 1]);
      return 1;
    }
    std::printf("wrote %zu bytes to %s\n", blob.size(), argv[i + 1]);
    return 0;
  }

  if (cmd == "delete") {
    if (i >= argc) {
      Usage();
      return 2;
    }
    const Status status = client.Delete(argv[i]);
    if (!status.ok()) return Fail(status);
    std::printf("deleted %s\n", argv[i]);
    return 0;
  }

  if (cmd == "stats") {
    const std::string name = i < argc ? argv[i] : "";
    mrl::Result<StatsReply> stats = client.Stats(name);
    if (!stats.ok()) return Fail(stats.status());
    const StatsReply& reply = stats.value();
    std::printf("tenants=%llu total_count=%llu\n",
                static_cast<unsigned long long>(reply.num_tenants),
                static_cast<unsigned long long>(reply.total_count));
    if (!name.empty()) {
      if (!reply.tenant_present) {
        std::printf("tenant %s: not present\n", name.c_str());
      } else {
        std::printf(
            "tenant %s: kind=%s count=%llu memory_elements=%llu\n",
            name.c_str(),
            std::string(SketchKindName(reply.tenant_kind)).c_str(),
            static_cast<unsigned long long>(reply.tenant_count),
            static_cast<unsigned long long>(reply.tenant_memory_elements));
      }
    }
    return 0;
  }

  Usage();
  return 2;
}
