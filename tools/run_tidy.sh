#!/usr/bin/env bash
# The static-analysis wall, runnable locally and invoked verbatim by the CI
# static-analysis lane — one script so the two can never drift.
#
#   1. configures a clang build dir (compile_commands.json with clang's
#      flags, fuzz harnesses included so their TUs are analyzed too),
#   2. builds the in-repo clang-tidy plugin (tools/tidy) and asserts all
#      three mrlquant-* checks actually load — a plugin that silently fails
#      to build would otherwise shrink the wall,
#   3. runs clang-tidy (curated .clang-tidy set + clang-analyzer-* +
#      mrlquant-*) over every first-party TU, teeing findings to a log.
#
# Exit status: nonzero iff any finding or infrastructure failure.
#
# Environment:
#   BUILD_DIR     build directory (default: build-tidy)
#   CLANG_TIDY    clang-tidy binary (default: first of clang-tidy{,-18..15})
#   CC / CXX      compilers for the configure (default: clang / clang++)
#   TIDY_LOG      findings log path (default: $BUILD_DIR/tidy-findings.log)
#   TIDY_JOBS     parallel clang-tidy processes (default: nproc)
set -euo pipefail

cd "$(dirname "$0")/.."

BUILD_DIR="${BUILD_DIR:-build-tidy}"
TIDY_LOG="${TIDY_LOG:-${BUILD_DIR}/tidy-findings.log}"
TIDY_JOBS="${TIDY_JOBS:-$(nproc)}"
export CC="${CC:-clang}"
export CXX="${CXX:-clang++}"

if [[ -z "${CLANG_TIDY:-}" ]]; then
  for cand in clang-tidy clang-tidy-18 clang-tidy-17 clang-tidy-16 \
      clang-tidy-15; do
    if command -v "$cand" >/dev/null 2>&1; then
      CLANG_TIDY="$cand"
      break
    fi
  done
fi
if [[ -z "${CLANG_TIDY:-}" ]]; then
  echo "run_tidy: no clang-tidy binary found" >&2
  exit 1
fi
echo "run_tidy: using $("$CLANG_TIDY" --version | head -n1)"

# --- 1. Configure ---------------------------------------------------------
gen=()
command -v ninja >/dev/null 2>&1 && gen=(-G Ninja)
cmake -B "$BUILD_DIR" -S . "${gen[@]}" -DMRLQUANT_FUZZ=ON

# --- 2. Plugin ------------------------------------------------------------
# The lane is only meaningful with the custom checks loaded; refuse to run
# a reduced wall. (Plugin configuration requires the clang-tidy dev
# headers; see tools/tidy/CMakeLists.txt for the packages.)
if ! cmake --build "$BUILD_DIR" -j --target mrlquant_tidy_checks; then
  echo "run_tidy: mrlquant_tidy_checks did not build — install the" \
       "clang-tidy dev headers (clang-tidy + libclang-N-dev + llvm-N-dev)" >&2
  exit 1
fi
PLUGIN="$(find "$BUILD_DIR/tools/tidy" -name 'libmrlquant_tidy_checks*' \
  | head -n1)"
if [[ -z "$PLUGIN" ]]; then
  echo "run_tidy: plugin module not found under $BUILD_DIR/tools/tidy" >&2
  exit 1
fi

loaded="$("$CLANG_TIDY" --load "$PLUGIN" --list-checks \
  --checks='-*,mrlquant-*' || true)"
for check in mrlquant-no-alloc-in-hot-path mrlquant-use-sort-engine \
    mrlquant-guarded-mutex; do
  if ! grep -q "$check" <<<"$loaded"; then
    echo "run_tidy: check $check failed to load from $PLUGIN" >&2
    exit 1
  fi
done
echo "run_tidy: all 3 mrlquant-* checks loaded from $PLUGIN"

# --- 3. Analyze -----------------------------------------------------------
# First-party TUs only; tools/tidy is excluded (the plugin compiles against
# LLVM headers we do not lint, and its fixtures are intentionally bad).
mapfile -t files < <(git ls-files 'src/**/*.cc' 'tools/*.cc' 'fuzz/*.cc' \
  | grep -v '^tools/tidy/')
echo "run_tidy: analyzing ${#files[@]} translation units..."

mkdir -p "$(dirname "$TIDY_LOG")"
status=0
printf '%s\n' "${files[@]}" \
  | xargs -P "$TIDY_JOBS" -n 1 \
      "$CLANG_TIDY" --load "$PLUGIN" -p "$BUILD_DIR" --quiet \
  2>&1 | tee "$TIDY_LOG" || status=$?

if [[ "$status" -ne 0 ]]; then
  echo "run_tidy: findings detected (log: $TIDY_LOG)" >&2
  exit 1
fi
echo "run_tidy: clean (log: $TIDY_LOG)"
