// mrlquant_router: stateless distributed front for mrlquantd backends.
//
//   mrlquant_router --uds=/tmp/router.sock \
//                   --backends=unix:/tmp/b0.sock,unix:/tmp/b1.sock \
//                   --replicate
//
// Speaks the same wire protocol as mrlquantd, so any client (including
// mrlquant_client) points at the router unchanged. Tenants are placed on
// backends with a consistent-hash ring; --replicate mirrors writes to a
// ring replica and fails over when the primary dies; --partition names
// tenants that are range-partitioned across ALL backends, with queries
// answered by a Section 6 fan-out merge of partial summaries. Runs until
// SIGINT/SIGTERM (self-pipe park, like mrlquantd).

#include <unistd.h>

#include <cerrno>
#include <csignal>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "router/router.h"

namespace {

int g_signal_pipe[2] = {-1, -1};

void HandleSignal(int) {
  const char byte = 1;
  [[maybe_unused]] const ssize_t w = write(g_signal_pipe[1], &byte, 1);
}

void Usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s --backends=LIST [--uds=PATH] [--port=N] [--replicate]\n"
      "          [--partition=NAME[,NAME...]] [--vnodes=N]\n"
      "          [--health-interval-ms=N] [--rpc-timeout-ms=N]\n"
      "          [--fail-threshold=N]\n"
      "--backends is a comma-separated list of mrlquantd addresses, each\n"
      "unix:PATH or HOST:PORT. At least one of --uds / --port is required\n"
      "(--port=0 binds an ephemeral port).\n"
      "--replicate mirrors each tenant's writes to a ring replica and\n"
      "fails over when the primary dies (needs >= 2 backends).\n"
      "--partition names tenants spread across ALL backends; their\n"
      "queries merge per-backend partial summaries (Section 6).\n",
      argv0);
}

std::vector<std::string> SplitCommas(const std::string& text) {
  std::vector<std::string> parts;
  std::size_t start = 0;
  while (start <= text.size()) {
    std::size_t comma = text.find(',', start);
    if (comma == std::string::npos) comma = text.size();
    if (comma > start) parts.push_back(text.substr(start, comma - start));
    start = comma + 1;
  }
  return parts;
}

bool ParseFlag(const char* arg, const char* name, std::string* out) {
  const std::size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) != 0 || arg[len] != '=') return false;
  *out = arg + len + 1;
  return true;
}

bool ParseIntFlag(const char* arg, const char* name, long* out) {
  std::string text;
  if (!ParseFlag(arg, name, &text)) return false;
  char* end = nullptr;
  const long v = std::strtol(text.c_str(), &end, 10);
  if (end == nullptr || *end != '\0') {
    std::fprintf(stderr, "mrlquant_router: bad integer for %s: %s\n", name,
                 text.c_str());
    std::exit(2);
  }
  *out = v;
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  mrl::router::RouterOptions options;
  for (int i = 1; i < argc; ++i) {
    std::string text;
    long value = 0;
    if (ParseFlag(argv[i], "--uds", &options.uds_path)) continue;
    if (ParseIntFlag(argv[i], "--port", &value)) {
      options.tcp_port = static_cast<int>(value);
      continue;
    }
    if (ParseFlag(argv[i], "--backends", &text)) {
      options.backends = SplitCommas(text);
      continue;
    }
    if (ParseFlag(argv[i], "--partition", &text)) {
      for (std::string& name : SplitCommas(text)) {
        options.partitioned.push_back(std::move(name));
      }
      continue;
    }
    if (std::strcmp(argv[i], "--replicate") == 0) {
      options.replicate = true;
      continue;
    }
    if (ParseIntFlag(argv[i], "--vnodes", &value)) {
      options.vnodes = static_cast<int>(value);
      continue;
    }
    if (ParseIntFlag(argv[i], "--health-interval-ms", &value)) {
      options.health_interval_ms = static_cast<int>(value);
      continue;
    }
    if (ParseIntFlag(argv[i], "--rpc-timeout-ms", &value)) {
      options.rpc_timeout_ms = static_cast<int>(value);
      continue;
    }
    if (ParseIntFlag(argv[i], "--fail-threshold", &value)) {
      options.fail_threshold = static_cast<int>(value);
      continue;
    }
    if (std::strcmp(argv[i], "--help") == 0) {
      Usage(argv[0]);
      return 0;
    }
    std::fprintf(stderr, "mrlquant_router: unknown argument: %s\n", argv[i]);
    Usage(argv[0]);
    return 2;
  }

  if (pipe(g_signal_pipe) != 0) {
    std::fprintf(stderr, "mrlquant_router: pipe: %s\n", std::strerror(errno));
    return 1;
  }

  const std::size_t num_backends = options.backends.size();
  const bool replicated = options.replicate;
  auto router = mrl::router::Router::Create(std::move(options));
  if (!router.ok()) {
    std::fprintf(stderr, "mrlquant_router: %s\n",
                 router.status().message().c_str());
    return 1;
  }

  std::signal(SIGINT, HandleSignal);
  std::signal(SIGTERM, HandleSignal);
  std::fprintf(stderr,
               "mrlquant_router: serving (pid %ld, %zu backend%s%s",
               static_cast<long>(getpid()), num_backends,
               num_backends == 1 ? "" : "s",
               replicated ? ", replicated" : "");
  if (router.value()->tcp_port() != 0) {
    std::fprintf(stderr, ", tcp port %u",
                 static_cast<unsigned>(router.value()->tcp_port()));
  }
  std::fprintf(stderr, ")\n");
  char byte;
  while (read(g_signal_pipe[0], &byte, 1) < 0 && errno == EINTR) {
  }
  std::fprintf(stderr, "mrlquant_router: shutting down\n");
  router.value()->Stop();
  return 0;
}
